//! A ShflLock-style shuffling queue-lock framework (Kashyap et al.,
//! SOSP 2019 \[50\]), adapted to AMP core classes.
//!
//! ShflLock keeps waiters in one queue and lets a *policy* reorder
//! that queue while threads wait. The paper compares LibASL against
//! ShflLock carrying a static proportional policy (SHFL-PB10, built in
//! [`crate::proportional`]); this module provides the *framework*
//! itself — a queue lock parameterized by a [`ShufflePolicy`] that
//! inspects a bounded prefix of the waiting queue at each handover and
//! picks the next holder — so that policy ablations (`bench
//! ablate_policy`) can compare FIFO, class-local, prefer-big and
//! proportional orderings under one mechanism.
//!
//! ## Simplification vs. the original
//!
//! In ShflLock, waiting threads near the head become "shufflers" and
//! reorder the queue while the holder runs. Here the *releaser* picks
//! the next holder from the first `MAX_SCAN` linked waiters and
//! unlinks it. The reachable orderings are the same (any bounded
//! reordering of a FIFO prefix); what changes is only who spends the
//! cycles, which matters for handover latency but not for the
//! ordering-policy questions the ablations ask.
//!
//! ## Queue structure
//!
//! Arrivals append MCS-style through `tail`. The first *waiting* node
//! is tracked in a holder-managed `head` slot; the holder's own node
//! is never part of that chain. Granting the head is free; granting a
//! mid-chain waiter unlinks it (its predecessor's `next` is rewritten)
//! — the last known node can only be granted, never unlinked, because
//! an arrival may be mid-append behind it.

use std::cell::{Cell, RefCell, UnsafeCell};
use std::ptr::{self, NonNull};
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};

use asl_runtime::registry::current_core;
use asl_runtime::CoreKind;

use crate::RawLock;

const WAITING: u32 = 1;
const GRANTED: u32 = 0;

/// Longest queue prefix a policy may inspect per handover.
pub const MAX_SCAN: usize = 16;

/// One waiting-queue entry as shown to a [`ShufflePolicy`].
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// Core class of the waiting thread.
    pub kind: CoreKind,
    /// Queue position (0 = front / longest-waiting).
    pub position: usize,
    /// Whether this entry can be granted out of order. The last
    /// scanned entry is not unlinkable; a policy picking an
    /// ineligible entry falls back to the front.
    pub eligible: bool,
}

/// A queue-reordering policy: picks which candidate locks next.
///
/// Implementations must be cheap (runs on every handover) and must
/// return an index `< candidates.len()`. State updates are safe with
/// relaxed atomics: calls are serialized by lock handovers.
pub trait ShufflePolicy: Send + Sync + 'static {
    /// Choose the next holder among `candidates` (never empty).
    /// `releaser` is the class of the thread releasing the lock.
    fn pick(&self, releaser: CoreKind, candidates: &[Candidate]) -> usize;

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Strict FIFO (degenerates to MCS; the control policy).
#[derive(Debug, Default)]
pub struct FifoPolicy;

impl ShufflePolicy for FifoPolicy {
    fn pick(&self, _releaser: CoreKind, _candidates: &[Candidate]) -> usize {
        0
    }
    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// NUMA-local analog: prefer waiters of the releaser's class, with a
/// bounded number of consecutive skips of the front waiter so the
/// other class is not starved (ShflLock's long-term fairness).
pub struct ClassLocalPolicy {
    max_skips: u32,
    skips: AtomicU32,
}

impl ClassLocalPolicy {
    /// Prefer same-class waiters, forcing FIFO after `max_skips`
    /// consecutive out-of-order grants.
    pub fn new(max_skips: u32) -> Self {
        ClassLocalPolicy {
            max_skips,
            skips: AtomicU32::new(0),
        }
    }
}

impl ShufflePolicy for ClassLocalPolicy {
    fn pick(&self, releaser: CoreKind, candidates: &[Candidate]) -> usize {
        if self.skips.load(Ordering::Relaxed) >= self.max_skips {
            self.skips.store(0, Ordering::Relaxed);
            return 0;
        }
        let choice = candidates
            .iter()
            .position(|c| c.kind == releaser && c.eligible)
            .unwrap_or(0);
        if choice == 0 {
            self.skips.store(0, Ordering::Relaxed);
        } else {
            self.skips.fetch_add(1, Ordering::Relaxed);
        }
        choice
    }
    fn name(&self) -> &'static str {
        "class-local"
    }
}

/// Always prefer big-core waiters, with the same bounded-skip
/// fairness valve — the static "prioritize fast cores" strawman of
/// §2.3, as a shuffling policy.
pub struct PreferBigPolicy {
    max_skips: u32,
    skips: AtomicU32,
}

impl PreferBigPolicy {
    /// Prefer big waiters, forcing FIFO after `max_skips` skips.
    pub fn new(max_skips: u32) -> Self {
        PreferBigPolicy {
            max_skips,
            skips: AtomicU32::new(0),
        }
    }
}

impl ShufflePolicy for PreferBigPolicy {
    fn pick(&self, _releaser: CoreKind, candidates: &[Candidate]) -> usize {
        if self.skips.load(Ordering::Relaxed) >= self.max_skips {
            self.skips.store(0, Ordering::Relaxed);
            return 0;
        }
        let choice = candidates
            .iter()
            .position(|c| c.kind == CoreKind::Big && c.eligible)
            .unwrap_or(0);
        if choice == 0 {
            self.skips.store(0, Ordering::Relaxed);
        } else {
            self.skips.fetch_add(1, Ordering::Relaxed);
        }
        choice
    }
    fn name(&self) -> &'static str {
        "prefer-big"
    }
}

/// Proportional policy: grant a little-core waiter once every
/// `n + 1` handovers when one is waiting, otherwise prefer big — the
/// SHFL-PB discipline expressed in the shuffling framework.
pub struct ProportionalPolicy {
    n: u32,
    bigs: AtomicU32,
}

impl ProportionalPolicy {
    /// `n` big grants per little grant.
    pub fn new(n: u32) -> Self {
        ProportionalPolicy {
            n,
            bigs: AtomicU32::new(0),
        }
    }
}

impl ShufflePolicy for ProportionalPolicy {
    fn pick(&self, _releaser: CoreKind, candidates: &[Candidate]) -> usize {
        let little_due = self.bigs.load(Ordering::Relaxed) >= self.n;
        let want = if little_due {
            CoreKind::Little
        } else {
            CoreKind::Big
        };
        let choice = candidates
            .iter()
            .position(|c| c.kind == want && c.eligible)
            .unwrap_or(0);
        match candidates[choice].kind {
            CoreKind::Big => {
                self.bigs.fetch_add(1, Ordering::Relaxed);
            }
            CoreKind::Little => self.bigs.store(0, Ordering::Relaxed),
        }
        choice
    }
    fn name(&self) -> &'static str {
        "proportional"
    }
}

/// Queue node.
#[repr(align(64))]
struct ShflNode {
    state: AtomicU32,
    next: AtomicPtr<ShflNode>,
    /// Written pre-publication by the enqueuer, read by holders.
    kind: Cell<CoreKind>,
}

impl ShflNode {
    fn new() -> Self {
        ShflNode {
            state: AtomicU32::new(GRANTED),
            next: AtomicPtr::new(ptr::null_mut()),
            kind: Cell::new(CoreKind::Big),
        }
    }
}

// SAFETY: `kind` is written pre-publication only.
unsafe impl Send for ShflNode {}
unsafe impl Sync for ShflNode {}

thread_local! {
    static FREELIST: RefCell<Vec<NonNull<ShflNode>>> = const { RefCell::new(Vec::new()) };
}

fn take_node() -> NonNull<ShflNode> {
    FREELIST
        .with(|f| f.borrow_mut().pop())
        .unwrap_or_else(|| NonNull::from(Box::leak(Box::new(ShflNode::new()))))
}

fn put_node(node: NonNull<ShflNode>) {
    FREELIST.with(|f| f.borrow_mut().push(node));
}

/// Token proving acquisition of a [`ShuffleLock`].
pub struct ShuffleToken(NonNull<ShflNode>);

impl ShuffleToken {
    /// Encode as a raw word (for the object-safe lock facade).
    #[inline]
    pub fn into_raw(self) -> usize {
        self.0.as_ptr() as usize
    }

    /// Rebuild from a word produced by [`ShuffleToken::into_raw`].
    ///
    /// # Safety
    /// `raw` must come from `into_raw` on an unreleased token of the
    /// same lock.
    #[inline]
    pub unsafe fn from_raw(raw: usize) -> Self {
        ShuffleToken(NonNull::new_unchecked(raw as *mut ShflNode))
    }
}

impl crate::plain::TokenWords for ShuffleToken {
    #[inline]
    fn into_words(self) -> (usize, usize) {
        (self.into_raw(), 0)
    }
    #[inline]
    unsafe fn from_words(a: usize, _b: usize) -> Self {
        Self::from_raw(a)
    }
}

/// The shuffling queue lock.
pub struct ShuffleLock<P: ShufflePolicy> {
    tail: AtomicPtr<ShflNode>,
    /// First waiting node, or null when the chain is empty/unknown;
    /// only the lock holder reads or writes this.
    head: UnsafeCell<*mut ShflNode>,
    policy: P,
}

// SAFETY: `head` is only accessed by the unique lock holder.
unsafe impl<P: ShufflePolicy> Send for ShuffleLock<P> {}
unsafe impl<P: ShufflePolicy> Sync for ShuffleLock<P> {}

impl<P: ShufflePolicy> ShuffleLock<P> {
    /// New unlocked shuffle lock driven by `policy`.
    pub fn new(policy: P) -> Self {
        ShuffleLock {
            tail: AtomicPtr::new(ptr::null_mut()),
            head: UnsafeCell::new(ptr::null_mut()),
            policy,
        }
    }

    /// The driving policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    fn wait_for_link(node: NonNull<ShflNode>) -> *mut ShflNode {
        let mut spin = asl_runtime::relax::Spin::new();
        loop {
            let next = unsafe { node.as_ref() }.next.load(Ordering::Acquire);
            if !next.is_null() {
                return next;
            }
            spin.relax();
        }
    }

    #[inline]
    fn grant(n: *mut ShflNode) {
        unsafe { (*n).state.store(GRANTED, Ordering::Release) };
    }
}

impl<P: ShufflePolicy> RawLock for ShuffleLock<P> {
    type Token = ShuffleToken;

    #[inline]
    fn lock(&self) -> ShuffleToken {
        let node = take_node();
        unsafe {
            node.as_ref().state.store(WAITING, Ordering::Relaxed);
            node.as_ref().next.store(ptr::null_mut(), Ordering::Relaxed);
            node.as_ref().kind.set(current_core().kind);
        }
        let pred = self.tail.swap(node.as_ptr(), Ordering::AcqRel);
        if !pred.is_null() {
            // SAFETY: `pred` is pinned until we store the link.
            let mut spin = asl_runtime::relax::Spin::new();
            unsafe {
                (*pred).next.store(node.as_ptr(), Ordering::Release);
                while node.as_ref().state.load(Ordering::Acquire) == WAITING {
                    spin.relax();
                }
            }
        }
        ShuffleToken(node)
    }

    #[inline]
    fn try_lock(&self) -> Option<ShuffleToken> {
        if !self.tail.load(Ordering::Relaxed).is_null() {
            return None;
        }
        let node = take_node();
        unsafe {
            node.as_ref().state.store(WAITING, Ordering::Relaxed);
            node.as_ref().next.store(ptr::null_mut(), Ordering::Relaxed);
            node.as_ref().kind.set(current_core().kind);
        }
        match self.tail.compare_exchange(
            ptr::null_mut(),
            node.as_ptr(),
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => Some(ShuffleToken(node)),
            Err(_) => {
                put_node(node);
                None
            }
        }
    }

    fn unlock(&self, token: ShuffleToken) {
        let node = token.0;
        // SAFETY (throughout): we are the holder; `head` is ours and
        // chain nodes are pinned by their spinning owners.
        unsafe {
            let head = &mut *self.head.get();
            let chain_first = if head.is_null() {
                // Chain unknown: derive from our own node.
                let succ = node.as_ref().next.load(Ordering::Acquire);
                if succ.is_null() {
                    if self
                        .tail
                        .compare_exchange(
                            node.as_ptr(),
                            ptr::null_mut(),
                            Ordering::Release,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                    {
                        put_node(node);
                        return; // queue empty: released
                    }
                    Self::wait_for_link(node)
                } else {
                    succ
                }
            } else {
                *head
            };

            // Scan the linked prefix.
            let mut ptrs: [*mut ShflNode; MAX_SCAN] = [ptr::null_mut(); MAX_SCAN];
            let mut nexts: [*mut ShflNode; MAX_SCAN] = [ptr::null_mut(); MAX_SCAN];
            let mut cands: [Candidate; MAX_SCAN] = [Candidate {
                kind: CoreKind::Big,
                position: 0,
                eligible: false,
            }; MAX_SCAN];
            let mut len = 0;
            let mut cur = chain_first;
            while len < MAX_SCAN && !cur.is_null() {
                let nxt = (*cur).next.load(Ordering::Acquire);
                ptrs[len] = cur;
                nexts[len] = nxt;
                cands[len] = Candidate {
                    kind: (*cur).kind.get(),
                    position: len,
                    eligible: len == 0 || !nxt.is_null(),
                };
                len += 1;
                cur = nxt;
            }

            let releaser = node.as_ref().kind.get();
            let mut pick = self.policy.pick(releaser, &cands[..len]);
            debug_assert!(pick < len, "policy returned out-of-range index");
            if pick >= len || !cands[pick].eligible {
                pick = 0;
            }

            let chosen = ptrs[pick];
            if pick == 0 {
                // Granting the front: the chain simply advances. When
                // the rest is unknown (null), the new holder's own
                // node is the entry point for later arrivals.
                *head = nexts[0];
            } else {
                // Unlink mid-chain (eligibility guarantees a linked
                // successor) and keep the front of the chain.
                (*ptrs[pick - 1]).next.store(nexts[pick], Ordering::Relaxed);
                *head = chain_first;
            }
            Self::grant(chosen);
            put_node(node);
        }
    }

    #[inline]
    fn is_locked(&self) -> bool {
        !self.tail.load(Ordering::Relaxed).is_null()
    }

    const NAME: &'static str = "shuffle";
}

/// With the pass-through policy the shuffle queue grants strictly in
/// arrival order, so it qualifies as a FIFO substrate for the
/// reorderable lock.
impl crate::FifoLock for ShuffleLock<FifoPolicy> {}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_runtime::registry::{register_on_core, unregister};
    use asl_runtime::topology::{CoreId, Topology};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    fn hammer<P: ShufflePolicy>(policy: P, threads: usize, iters: u64) {
        let l = Arc::new(ShuffleLock::new(policy));
        let v = Arc::new(Counter::default());
        let mut handles = vec![];
        for _ in 0..threads {
            let l = l.clone();
            let v = v.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..iters {
                    let t = l.lock();
                    v.bump();
                    l.unlock(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(v.get(), threads as u64 * iters);
        assert!(!l.is_locked());
    }

    #[test]
    fn basic() {
        let l = ShuffleLock::new(FifoPolicy);
        assert!(!l.is_locked());
        let t = l.lock();
        assert!(l.is_locked());
        l.unlock(t);
        assert!(!l.is_locked());
    }

    #[test]
    fn try_lock_contended() {
        let l = ShuffleLock::new(FifoPolicy);
        let t = l.lock();
        assert!(l.try_lock().is_none());
        l.unlock(t);
        let t2 = l.try_lock().expect("free after unlock");
        l.unlock(t2);
    }

    #[test]
    fn mutual_exclusion_fifo() {
        hammer(FifoPolicy, 8, 20_000);
    }

    #[test]
    fn mutual_exclusion_class_local() {
        hammer(ClassLocalPolicy::new(32), 8, 20_000);
    }

    #[test]
    fn mutual_exclusion_prefer_big() {
        hammer(PreferBigPolicy::new(32), 8, 20_000);
    }

    #[test]
    fn mutual_exclusion_proportional() {
        hammer(ProportionalPolicy::new(10), 8, 20_000);
    }

    #[test]
    fn mixed_classes_terminate() {
        // 4 big + 4 little threads under prefer-big with a small skip
        // bound: little threads must not starve (fixed iterations
        // terminate).
        let topo = Topology::apple_m1();
        let l = Arc::new(ShuffleLock::new(PreferBigPolicy::new(16)));
        let done = Arc::new(AtomicU64::new(0));
        let mut handles = vec![];
        for i in 0..8 {
            let topo = topo.clone();
            let l = l.clone();
            let done = done.clone();
            handles.push(std::thread::spawn(move || {
                register_on_core(&topo, CoreId(i));
                for _ in 0..10_000 {
                    let t = l.lock();
                    l.unlock(t);
                }
                done.fetch_add(1, Ordering::Relaxed);
                unregister();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(done.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn policy_names() {
        assert_eq!(FifoPolicy.name(), "fifo");
        assert_eq!(ClassLocalPolicy::new(1).name(), "class-local");
        assert_eq!(PreferBigPolicy::new(1).name(), "prefer-big");
        assert_eq!(ProportionalPolicy::new(1).name(), "proportional");
    }

    #[test]
    fn fifo_policy_always_front() {
        let c = [
            Candidate {
                kind: CoreKind::Little,
                position: 0,
                eligible: true,
            },
            Candidate {
                kind: CoreKind::Big,
                position: 1,
                eligible: true,
            },
        ];
        assert_eq!(FifoPolicy.pick(CoreKind::Big, &c), 0);
    }

    #[test]
    fn prefer_big_picks_first_big() {
        let p = PreferBigPolicy::new(100);
        let c = [
            Candidate {
                kind: CoreKind::Little,
                position: 0,
                eligible: true,
            },
            Candidate {
                kind: CoreKind::Little,
                position: 1,
                eligible: true,
            },
            Candidate {
                kind: CoreKind::Big,
                position: 2,
                eligible: true,
            },
        ];
        assert_eq!(p.pick(CoreKind::Big, &c), 2);
    }

    #[test]
    fn prefer_big_respects_skip_bound() {
        let p = PreferBigPolicy::new(2);
        let c = [
            Candidate {
                kind: CoreKind::Little,
                position: 0,
                eligible: true,
            },
            Candidate {
                kind: CoreKind::Big,
                position: 1,
                eligible: true,
            },
        ];
        assert_eq!(p.pick(CoreKind::Big, &c), 1); // skip 1
        assert_eq!(p.pick(CoreKind::Big, &c), 1); // skip 2
        assert_eq!(p.pick(CoreKind::Big, &c), 0); // forced front
        assert_eq!(p.pick(CoreKind::Big, &c), 1); // counter reset
    }

    #[test]
    fn proportional_policy_alternates() {
        let p = ProportionalPolicy::new(2);
        let both = [
            Candidate {
                kind: CoreKind::Big,
                position: 0,
                eligible: true,
            },
            Candidate {
                kind: CoreKind::Little,
                position: 1,
                eligible: true,
            },
        ];
        // 2 big grants, then a little is due.
        assert_eq!(p.pick(CoreKind::Big, &both), 0);
        assert_eq!(p.pick(CoreKind::Big, &both), 0);
        assert_eq!(p.pick(CoreKind::Big, &both), 1);
        assert_eq!(p.pick(CoreKind::Big, &both), 0);
    }

    #[test]
    fn ineligible_pick_falls_back_to_front() {
        // A policy that always picks the last (possibly ineligible)
        // candidate: the lock must fall back to FIFO rather than
        // corrupt the queue.
        struct LastPolicy;
        impl ShufflePolicy for LastPolicy {
            fn pick(&self, _r: CoreKind, c: &[Candidate]) -> usize {
                c.len() - 1
            }
            fn name(&self) -> &'static str {
                "last"
            }
        }
        hammer(LastPolicy, 6, 20_000);
    }

    /// Counter whose correctness requires mutual exclusion.
    #[derive(Default)]
    struct Counter(std::cell::UnsafeCell<u64>);
    // SAFETY: test-only; accessed under the lock under test.
    unsafe impl Sync for Counter {}
    unsafe impl Send for Counter {}
    impl Counter {
        fn bump(&self) {
            unsafe { *self.0.get() += 1 }
        }
        fn get(&self) -> u64 {
            unsafe { *self.0.get() }
        }
    }
}
