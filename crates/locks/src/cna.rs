//! CNA — Compact NUMA-Aware lock (Dice & Kogan, EuroSys 2019 \[36\]),
//! adapted to AMP core classes.
//!
//! The paper's §2.2 argues that NUMA-aware locks collapse on AMP:
//! "when splitting the asymmetric cores in AMP onto two different
//! nodes, the long-term fairness will give the little core nodes an
//! equal chance to lock as the big core nodes". This module provides
//! that comparator: CNA with the big and little core classes playing
//! the role of the two NUMA nodes.
//!
//! CNA is an MCS variant. The releaser scans the main queue for a
//! waiter of its own class; waiters of the other class are detached
//! into a *secondary queue* so that consecutive handovers stay within
//! one class (on NUMA: one socket, saving cross-socket traffic). Every
//! `flush_threshold` handovers the secondary queue is spliced back in
//! front, which is exactly the periodic long-term fairness whose
//! equal-chance batching hurts AMP throughput.
//!
//! ## Deviations from the original
//!
//! * The secondary queue head/tail live in the lock (holder-managed)
//!   rather than being threaded through spare node fields; behaviour
//!   is identical, the footprint is two words per lock.
//! * Fairness is a deterministic handover counter instead of the
//!   original's probabilistic flush (the original suggests 1/256
//!   probability; we flush every `flush_threshold` handovers). This
//!   keeps experiments reproducible.

use std::cell::{Cell, RefCell, UnsafeCell};
use std::ptr::{self, NonNull};
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};

use asl_runtime::registry::current_core;
use asl_runtime::CoreKind;

use crate::RawLock;

const WAITING: u32 = 1;
const GRANTED: u32 = 0;

/// Default handovers between secondary-queue flushes (long-term
/// fairness period). The original CNA flushes with probability 1/256.
pub const DEFAULT_FLUSH_THRESHOLD: u32 = 256;

/// One CNA queue node: an MCS node plus the enqueuer's core class.
#[repr(align(64))]
pub struct CnaNode {
    state: AtomicU32,
    next: AtomicPtr<CnaNode>,
    /// Written by the enqueuing thread before it publishes the node
    /// via the tail swap; read by holders walking the queue after an
    /// acquire load of the linking pointer.
    kind: Cell<CoreKind>,
}

impl CnaNode {
    fn new() -> Self {
        CnaNode {
            state: AtomicU32::new(GRANTED),
            next: AtomicPtr::new(ptr::null_mut()),
            kind: Cell::new(CoreKind::Big),
        }
    }
}

// SAFETY: `kind` is written pre-publication only (see field doc).
unsafe impl Send for CnaNode {}
unsafe impl Sync for CnaNode {}

thread_local! {
    static FREELIST: RefCell<Vec<NonNull<CnaNode>>> = const { RefCell::new(Vec::new()) };
}

fn take_node() -> NonNull<CnaNode> {
    FREELIST
        .with(|f| f.borrow_mut().pop())
        .unwrap_or_else(|| NonNull::from(Box::leak(Box::new(CnaNode::new()))))
}

fn put_node(node: NonNull<CnaNode>) {
    FREELIST.with(|f| f.borrow_mut().push(node));
}

/// Token proving acquisition of a [`CnaLock`]; owns the queue node.
pub struct CnaToken(NonNull<CnaNode>);

impl CnaToken {
    /// Encode as a raw word (for the object-safe lock facade).
    #[inline]
    pub fn into_raw(self) -> usize {
        self.0.as_ptr() as usize
    }

    /// Rebuild from a word produced by [`CnaToken::into_raw`].
    ///
    /// # Safety
    /// `raw` must come from `into_raw` on an unreleased token of the
    /// same lock.
    #[inline]
    pub unsafe fn from_raw(raw: usize) -> Self {
        CnaToken(NonNull::new_unchecked(raw as *mut CnaNode))
    }
}

impl crate::plain::TokenWords for CnaToken {
    #[inline]
    fn into_words(self) -> (usize, usize) {
        (self.into_raw(), 0)
    }
    #[inline]
    unsafe fn from_words(a: usize, _b: usize) -> Self {
        Self::from_raw(a)
    }
}

/// Holder-managed state: only the current lock holder reads or writes
/// these fields, so plain loads/stores are race-free (the grant
/// release/acquire edge orders holder transitions).
struct HolderState {
    sec_head: *mut CnaNode,
    sec_tail: *mut CnaNode,
    handovers: u32,
}

/// Compact class-aware queue lock (CNA adapted to AMP).
pub struct CnaLock {
    tail: AtomicPtr<CnaNode>,
    holder: UnsafeCell<HolderState>,
    flush_threshold: u32,
}

// SAFETY: `holder` is only touched by the unique lock holder.
unsafe impl Send for CnaLock {}
unsafe impl Sync for CnaLock {}

impl CnaLock {
    /// New unlocked CNA lock with the default fairness period.
    pub fn new() -> Self {
        Self::with_threshold(DEFAULT_FLUSH_THRESHOLD)
    }

    /// New lock flushing the secondary queue every `flush_threshold`
    /// handovers (must be ≥ 1).
    ///
    /// # Panics
    /// Panics if `flush_threshold == 0`.
    pub fn with_threshold(flush_threshold: u32) -> Self {
        assert!(flush_threshold >= 1, "flush threshold must be >= 1");
        CnaLock {
            tail: AtomicPtr::new(ptr::null_mut()),
            holder: UnsafeCell::new(HolderState {
                sec_head: ptr::null_mut(),
                sec_tail: ptr::null_mut(),
                handovers: 0,
            }),
            flush_threshold,
        }
    }

    /// The configured fairness period.
    pub fn flush_threshold(&self) -> u32 {
        self.flush_threshold
    }

    /// Wait for `node`'s successor link to appear (an enqueuer has
    /// swapped the tail but not yet stored the link).
    fn wait_for_link(node: NonNull<CnaNode>) -> *mut CnaNode {
        let mut spin = asl_runtime::relax::Spin::new();
        loop {
            let next = unsafe { node.as_ref() }.next.load(Ordering::Acquire);
            if !next.is_null() {
                return next;
            }
            spin.relax();
        }
    }

    /// Append `n` to the secondary queue (holder context).
    ///
    /// # Safety
    /// Caller must be the lock holder and `n` a detached queue node.
    unsafe fn sec_push(&self, n: *mut CnaNode) {
        let h = &mut *self.holder.get();
        (*n).next.store(ptr::null_mut(), Ordering::Relaxed);
        if h.sec_head.is_null() {
            h.sec_head = n;
        } else {
            (*h.sec_tail).next.store(n, Ordering::Relaxed);
        }
        h.sec_tail = n;
    }

    #[inline]
    fn grant(n: *mut CnaNode) {
        unsafe { (*n).state.store(GRANTED, Ordering::Release) };
    }
}

impl Default for CnaLock {
    fn default() -> Self {
        Self::new()
    }
}

impl RawLock for CnaLock {
    type Token = CnaToken;

    #[inline]
    fn lock(&self) -> CnaToken {
        let node = take_node();
        unsafe {
            node.as_ref().state.store(WAITING, Ordering::Relaxed);
            node.as_ref().next.store(ptr::null_mut(), Ordering::Relaxed);
            node.as_ref().kind.set(current_core().kind);
        }
        let pred = self.tail.swap(node.as_ptr(), Ordering::AcqRel);
        if !pred.is_null() {
            // SAFETY: `pred` is not recycled until we store the link.
            let mut spin = asl_runtime::relax::Spin::new();
            unsafe {
                (*pred).next.store(node.as_ptr(), Ordering::Release);
                while node.as_ref().state.load(Ordering::Acquire) == WAITING {
                    spin.relax();
                }
            }
        }
        CnaToken(node)
    }

    #[inline]
    fn try_lock(&self) -> Option<CnaToken> {
        if !self.tail.load(Ordering::Relaxed).is_null() {
            return None;
        }
        let node = take_node();
        unsafe {
            node.as_ref().state.store(WAITING, Ordering::Relaxed);
            node.as_ref().next.store(ptr::null_mut(), Ordering::Relaxed);
            node.as_ref().kind.set(current_core().kind);
        }
        match self.tail.compare_exchange(
            ptr::null_mut(),
            node.as_ptr(),
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => Some(CnaToken(node)),
            Err(_) => {
                put_node(node);
                None
            }
        }
    }

    fn unlock(&self, token: CnaToken) {
        let node = token.0;
        // SAFETY (throughout): we are the holder, so `self.holder` is
        // ours; queue nodes we dereference are pinned by their waiting
        // owners until granted.
        unsafe {
            let h = &mut *self.holder.get();
            h.handovers += 1;
            let flush_due = h.handovers >= self.flush_threshold;

            let mut succ = node.as_ref().next.load(Ordering::Acquire);
            if succ.is_null() {
                if h.sec_head.is_null() {
                    // Nothing anywhere: close the queue and release.
                    if self
                        .tail
                        .compare_exchange(
                            node.as_ptr(),
                            ptr::null_mut(),
                            Ordering::Release,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                    {
                        put_node(node);
                        return;
                    }
                    succ = Self::wait_for_link(node);
                } else {
                    // Main queue looks empty but the secondary has
                    // waiters: try to make the secondary the queue.
                    let (sh, st) = (h.sec_head, h.sec_tail);
                    if self
                        .tail
                        .compare_exchange(node.as_ptr(), st, Ordering::Release, Ordering::Relaxed)
                        .is_ok()
                    {
                        h.sec_head = ptr::null_mut();
                        h.sec_tail = ptr::null_mut();
                        h.handovers = 0;
                        Self::grant(sh);
                        put_node(node);
                        return;
                    }
                    // A newcomer beat the CAS; wait for the link and
                    // fall through to the normal path.
                    succ = Self::wait_for_link(node);
                }
            }

            if flush_due && !h.sec_head.is_null() {
                // Long-term fairness: splice the secondary queue in
                // front of the main queue and grant its head.
                let (sh, st) = (h.sec_head, h.sec_tail);
                (*st).next.store(succ, Ordering::Relaxed);
                h.sec_head = ptr::null_mut();
                h.sec_tail = ptr::null_mut();
                h.handovers = 0;
                Self::grant(sh);
                put_node(node);
                return;
            }

            // Prefer a successor of the releaser's class; detach
            // other-class waiters into the secondary queue. The last
            // known node cannot be detached (its link state is
            // unknowable), so it is granted regardless of class —
            // the same concession the original CNA makes.
            let my_kind = node.as_ref().kind.get();
            let mut cur = succ;
            loop {
                if (*cur).kind.get() == my_kind {
                    Self::grant(cur);
                    break;
                }
                let nxt = (*cur).next.load(Ordering::Acquire);
                if nxt.is_null() {
                    Self::grant(cur);
                    break;
                }
                self.sec_push(cur);
                cur = nxt;
            }
            put_node(node);
        }
    }

    #[inline]
    fn is_locked(&self) -> bool {
        !self.tail.load(Ordering::Relaxed).is_null()
    }

    const NAME: &'static str = "cna";
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_runtime::registry::{register_on_core, unregister};
    use asl_runtime::topology::{CoreId, Topology};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn basic() {
        let l = CnaLock::new();
        assert!(!l.is_locked());
        let t = l.lock();
        assert!(l.is_locked());
        l.unlock(t);
        assert!(!l.is_locked());
    }

    #[test]
    fn try_lock_contended() {
        let l = CnaLock::new();
        let t = l.lock();
        assert!(l.try_lock().is_none());
        l.unlock(t);
        let t2 = l.try_lock().expect("free after unlock");
        l.unlock(t2);
    }

    #[test]
    #[should_panic]
    fn zero_threshold_rejected() {
        let _ = CnaLock::with_threshold(0);
    }

    #[test]
    fn threshold_accessor() {
        assert_eq!(CnaLock::with_threshold(7).flush_threshold(), 7);
        assert_eq!(CnaLock::new().flush_threshold(), DEFAULT_FLUSH_THRESHOLD);
    }

    #[test]
    fn mutual_exclusion_same_class() {
        let l = Arc::new(CnaLock::new());
        let v = Arc::new(AtomicU64::new(0));
        let mut handles = vec![];
        for _ in 0..8 {
            let l = l.clone();
            let v = v.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..20_000 {
                    let t = l.lock();
                    // Non-atomic-looking RMW through relaxed pair: the
                    // lock must make this effectively atomic.
                    let x = v.load(Ordering::Relaxed);
                    v.store(x + 1, Ordering::Relaxed);
                    l.unlock(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(v.load(Ordering::Relaxed), 160_000);
    }

    #[test]
    fn mixed_classes_no_starvation() {
        // 2 big + 2 little threads on an M1-like topology; the flush
        // threshold must let both classes make progress.
        let topo = Topology::apple_m1();
        let l = Arc::new(CnaLock::with_threshold(64));
        let big_ops = Arc::new(AtomicU64::new(0));
        let little_ops = Arc::new(AtomicU64::new(0));
        let mut handles = vec![];
        for i in 0..4 {
            let topo = topo.clone();
            let l = l.clone();
            let big_ops = big_ops.clone();
            let little_ops = little_ops.clone();
            handles.push(std::thread::spawn(move || {
                let core = if i < 2 { CoreId(i) } else { CoreId(2 + i) };
                let a = register_on_core(&topo, core);
                let ctr = if a.kind == CoreKind::Big {
                    big_ops
                } else {
                    little_ops
                };
                for _ in 0..30_000 {
                    let t = l.lock();
                    l.unlock(t);
                }
                ctr.fetch_add(30_000, Ordering::Relaxed);
                unregister();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(big_ops.load(Ordering::Relaxed), 60_000);
        assert_eq!(little_ops.load(Ordering::Relaxed), 60_000);
    }

    #[test]
    fn batches_same_class_between_flushes() {
        // Single-threaded structural check of the holder state: with
        // an enormous threshold the secondary queue never flushes
        // mid-test, so repeated lock/unlock from one thread (one
        // class) must never touch the secondary queue.
        let l = CnaLock::with_threshold(u32::MAX);
        for _ in 0..1_000 {
            let t = l.lock();
            l.unlock(t);
        }
        let h = unsafe { &*l.holder.get() };
        assert!(h.sec_head.is_null());
        assert!(h.sec_tail.is_null());
    }
}
