//! Generic concurrency restriction (GCR): an admission-control
//! wrapper that stops scalability collapse for *any* lock.
//!
//! When runnable threads far exceed cores, every spin-based lock in
//! the zoo collapses: waiters burn scheduler quanta, holders get
//! preempted mid-critical-section, and FIFO queues convoy behind
//! descheduled successors. Dice & Kogan's *Avoiding Scalability
//! Collapse by Restricting Concurrency* observes that the fix is
//! lock-agnostic: bound the number of threads allowed to *compete*
//! for the lock, and park the excess where they cost nothing.
//!
//! [`Gcr`] wraps any [`RawLock`] (and [`GcrPlain`] any runtime-chosen
//! `Arc<dyn PlainLock>`) with a [`Gate`]:
//!
//! * at most `K` threads are **admitted** — inside the wrapped lock's
//!   own waiter set or holding it;
//! * excess arrivals push onto a **passive LIFO** and park through
//!   [`asl_runtime::substrate::park_or`], so they are off the run
//!   queue on the OS and charged bounded virtual waits on the
//!   simulator — the same code runs unmodified in both worlds;
//! * long-term fairness comes from **periodic reintroduction**: every
//!   `reintroduce_period` handovers that happen while waiters are
//!   passive, the *oldest* passive waiter is force-admitted (the LIFO
//!   keeps recently-run, cache-warm threads circulating; the tail
//!   pull bounds starvation);
//! * an **adaptive controller** grows or shrinks `K` from
//!   [`TelemetryCell`] signals. Shrink on either collapse signature:
//!   windowed hold times inflating past the best observed window
//!   while the contended streak spans it (holders being preempted),
//!   or windowed wait time exceeding 4x the windowed hold time
//!   (queueing — holds can stay perfectly clean while waits explode,
//!   e.g. behind a reordering lock). Grow when a window runs fully
//!   uncontended, *or* when the wrapped lock was busy under
//!   [`GROW_UTIL_PCT`]% of the window's wall time with waiters
//!   passive and waits still below holds — the gate is binding but
//!   the lock still has headroom. The wait/hold band (grow below 1x,
//!   shrink above 4x) is the hysteresis that keeps the two rules
//!   from fighting.
//!
//! Admission accounting is per-acquisition: a slot is held from
//! `lock()` to `unlock()`, never across the caller's think time. A
//! release *never* wakes a passive waiter directly — the freed slot
//! is left for the (expected-back) releaser to reclaim with zero
//! park/unpark traffic, which is what keeps the restricted set
//! cache-warm and the syscall rate at one unpark per
//! `reintroduce_period` operations instead of one pair per
//! operation. A thread that stops locking therefore cannot wedge the
//! gate: passive waiters re-check for headroom at least every
//! [`PASSIVE_RESCUE_BOUND`] (a bounded virtual-time charge on the
//! simulator) and admit themselves into slots nobody reclaimed.
//!
//! The wrapper's own [`TelemetryCell`] has hold/wait sampling on by
//! default — it is the controller's feedback signal, costing up to
//! two clock reads per acquisition. Use [`GcrConfig::fixed`] for a
//! static bound with no controller.
//!
//! ```
//! use asl_locks::api::GuardedLock;
//! use asl_locks::gcr::{Gcr, GcrConfig};
//! use asl_locks::TicketLock;
//!
//! // Admit at most 2 threads into the ticket queue; everyone else
//! // parks passively until a slot frees or reintroduction fires.
//! let lock = Gcr::with_config(TicketLock::new(), GcrConfig::fixed(2));
//! assert_eq!(lock.limit(), 2);
//! {
//!     let _held = lock.guard();
//! }
//! assert_eq!(lock.peak_active(), 1);
//! assert_eq!(lock.passive_len(), 0);
//! ```

use std::cell::{Cell, UnsafeCell};
use std::ptr;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::Thread;

use asl_runtime::clock::now_ns;

use crate::plain::{PlainLock, PlainToken};
use crate::telemetry::{TelemetryCell, TelemetrySnapshot};
use crate::{RawLock, TasLock};

const WAITING: u32 = 0;
const GRANTED: u32 = 1;

/// Upper bound on how long a passive waiter sleeps between headroom
/// checks on the OS (the simulator's park charge bounds the same loop
/// in virtual time). Releases never wake passive waiters directly —
/// see [`Gate::exit`] — so this is the worst-case latency for a
/// parked waiter to claim a slot nobody else wants. Long enough that
/// a full 128-thread passive set costs well under 1% CPU in spurious
/// wakes, short enough that draining an abandoned gate is prompt.
pub const PASSIVE_RESCUE_BOUND: std::time::Duration = std::time::Duration::from_millis(50);

/// How a passive wait on the gate ended (see `Gate::wait_passive`).
enum PassiveWait {
    /// An admission slot was transferred to us by a waker.
    Granted,
    /// We delisted ourselves before parking (headroom appeared); no
    /// slot held — re-compete.
    Retracted,
    /// The deadline passed and we delisted ourselves; no slot held.
    TimedOut,
}

/// One parked passive waiter. Lives on the waiting thread's stack;
/// linked into the gate's LIFO under the list lock. Ownership hands
/// back to the waiter the instant `state` becomes [`GRANTED`] — a
/// granter must never touch the node after that store.
#[repr(align(128))]
struct PassiveNode {
    state: AtomicU32,
    thread: Thread,
    /// LIFO link; read and written only under the gate's list lock.
    next: Cell<*mut PassiveNode>,
}

/// The admission gate: bounds how many threads may compete for
/// whatever sits behind it.
///
/// Usable standalone (the [`crate::Adaptive`] lock's *restricted*
/// morph stage gates its queue funnel with one): call [`Gate::admit`]
/// before entering the protected resource's waiter set and
/// [`Gate::exit`] after leaving it.
///
/// Invariant (fixed limit `K`): successful admissions keep the active
/// count at most `K`, except a periodic forced reintroduction which
/// may overshoot to `K + 1`; [`Gate::peak_active`] observes the
/// maximum ever reached, so the bound is testable, not aspirational.
pub struct Gate {
    /// Threads currently admitted (between `admit` and `exit`).
    active: AtomicU32,
    /// The admission bound `K`.
    limit: AtomicU32,
    /// Highest `active` reached by a successful admission.
    peak: AtomicU32,
    /// Passive LIFO length (SeqCst: Dekker-paired with `active` so
    /// publish-then-check-active vs decrement-then-check-len can
    /// never both miss).
    passive_len: AtomicU32,
    /// Exits observed while passive waiters existed, since the last
    /// successful reintroduction.
    handovers: AtomicU32,
    /// Forced admissions performed (long-term fairness pulse).
    reintroduced: AtomicU64,
    reintroduce_period: u32,
    /// Guards `head` and every node's `next` link.
    list_lock: TasLock,
    head: UnsafeCell<*mut PassiveNode>,
}

// Safety: `head` and all node links are accessed only under
// `list_lock`; nodes are handed between threads by the
// WAITING→GRANTED protocol (the granter clones the `Thread` handle
// and never touches the node after the Release store).
unsafe impl Send for Gate {}
unsafe impl Sync for Gate {}

impl Gate {
    /// Gate admitting at most `limit` threads, force-admitting the
    /// oldest passive waiter every `reintroduce_period` handovers.
    pub fn new(limit: u32, reintroduce_period: u32) -> Self {
        assert!(limit >= 1, "admission limit must be >= 1");
        assert!(reintroduce_period >= 1, "reintroduce period must be >= 1");
        Gate {
            active: AtomicU32::new(0),
            limit: AtomicU32::new(limit),
            peak: AtomicU32::new(0),
            passive_len: AtomicU32::new(0),
            handovers: AtomicU32::new(0),
            reintroduced: AtomicU64::new(0),
            reintroduce_period,
            list_lock: TasLock::new(),
            head: UnsafeCell::new(ptr::null_mut()),
        }
    }

    /// The current admission bound `K`.
    #[inline]
    pub fn limit(&self) -> u32 {
        self.limit.load(Ordering::Relaxed)
    }

    /// Change the admission bound. Shrinking drains lazily (admitted
    /// threads are never evicted mid-flight); growing only takes
    /// effect for future admissions — call [`Gate::fill`] to wake
    /// passive waiters into the new headroom.
    pub fn set_limit(&self, limit: u32) {
        assert!(limit >= 1, "admission limit must be >= 1");
        self.limit.store(limit, Ordering::Relaxed);
    }

    /// Threads currently admitted.
    #[inline]
    pub fn active(&self) -> u32 {
        self.active.load(Ordering::Relaxed)
    }

    /// Passive (parked) waiters right now.
    #[inline]
    pub fn passive_len(&self) -> u32 {
        self.passive_len.load(Ordering::Relaxed)
    }

    /// Highest admitted-set size any successful admission produced.
    #[inline]
    pub fn peak_active(&self) -> u32 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Forced (reintroduction) admissions performed so far.
    #[inline]
    pub fn reintroduced(&self) -> u64 {
        self.reintroduced.load(Ordering::Relaxed)
    }

    #[inline]
    fn note_peak(&self, n: u32) {
        self.peak.fetch_max(n, Ordering::Relaxed);
    }

    /// One CAS attempt loop below the limit. Every successful
    /// admission goes through a bounded compare-exchange (never a
    /// blind `fetch_add`), which is what makes the peak bound exact.
    fn try_enter(&self) -> bool {
        let mut spin = asl_runtime::relax::Spin::new();
        loop {
            let a = self.active.load(Ordering::Relaxed);
            if a >= self.limit.load(Ordering::Relaxed) {
                return false;
            }
            match self
                .active
                .compare_exchange_weak(a, a + 1, Ordering::Acquire, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.note_peak(a + 1);
                    return true;
                }
                Err(_) => {
                    spin.relax();
                }
            }
        }
    }

    /// Non-blocking admission attempt.
    #[inline]
    pub fn try_admit(&self) -> bool {
        self.try_enter()
    }

    /// Enter the admitted set, parking passively while it is full.
    /// Returns `true` when the caller had to wait (the gate's
    /// contention signal).
    pub fn admit(&self) -> bool {
        if self.try_enter() {
            return false;
        }
        loop {
            match self.wait_passive(None) {
                PassiveWait::Granted => {
                    // The waker already transferred a slot to us.
                    return true;
                }
                PassiveWait::TimedOut => unreachable!("no deadline"),
                // Retracted — room appeared while we were publishing.
                PassiveWait::Retracted => {
                    if self.try_enter() {
                        return true;
                    }
                }
            }
        }
    }

    /// [`Gate::admit`] with a deadline (absolute
    /// [`asl_runtime::clock`] nanoseconds): the timed-acquisition
    /// front half of [`Gcr`]'s `try_lock_until`. Returns
    /// `Some(waited)` when admitted (`waited` is the contention
    /// signal, as in `admit`), `None` when the deadline passed first —
    /// in which case the caller holds no admission slot and no
    /// passive-list node remains.
    pub fn admit_until(&self, deadline_ns: u64) -> Option<bool> {
        if self.try_enter() {
            return Some(false);
        }
        loop {
            match self.wait_passive(Some(deadline_ns)) {
                PassiveWait::Granted => return Some(true),
                PassiveWait::TimedOut => return None,
                PassiveWait::Retracted => {
                    if self.try_enter() {
                        return Some(true);
                    }
                    if asl_runtime::clock::now_ns() >= deadline_ns {
                        return None;
                    }
                }
            }
        }
    }

    /// Park on the passive LIFO until granted a slot, retracted, or
    /// (with a deadline) expired. The timeout path is the passive
    /// *self-rescue* path pointed at the caller instead of the gate:
    /// the expired waiter unlinks its own node under the list lock,
    /// exactly like a rescuer delisting itself on observed headroom —
    /// and a failed unlink means a grant is already published, which
    /// the waiter then accepts (a late win, allowed by the timed
    /// contract).
    fn wait_passive(&self, deadline_ns: Option<u64>) -> PassiveWait {
        let node = PassiveNode {
            state: AtomicU32::new(WAITING),
            thread: std::thread::current(),
            next: Cell::new(ptr::null_mut()),
        };
        let node_ptr = &node as *const PassiveNode as *mut PassiveNode;
        self.list_lock.lock();
        unsafe {
            node.next.set(*self.head.get());
            *self.head.get() = node_ptr;
        }
        self.passive_len.fetch_add(1, Ordering::SeqCst);
        // Dekker pair with `exit`: we published our node *before*
        // this load; an exiting thread decrements `active` *before*
        // loading `passive_len`. In any interleaving at least one
        // side observes the other, so the last slot can never slip
        // away unseen while we park.
        if self.active.load(Ordering::SeqCst) < self.limit.load(Ordering::Relaxed) {
            // Still holding the list lock, so we are necessarily the
            // head: retract and re-compete instead of parking with
            // possibly nobody left to wake us.
            unsafe {
                *self.head.get() = node.next.get();
            }
            self.passive_len.fetch_sub(1, Ordering::SeqCst);
            self.list_lock.unlock(());
            return PassiveWait::Retracted;
        }
        self.list_lock.unlock(());
        loop {
            if node.state.load(Ordering::Acquire) == GRANTED {
                return PassiveWait::Granted;
            }
            // Self-rescue: a releaser leaves a freed slot silently
            // (no wake — see `exit`), betting it will be reclaimed by
            // a returning thread for free. Passive waiters underwrite
            // that bet: whenever one observes headroom it delists
            // itself and re-competes, so an abandoned slot strands
            // nobody for longer than one park bound.
            if self.active.load(Ordering::SeqCst) < self.limit.load(Ordering::Relaxed) {
                if self.try_unlink(node_ptr) {
                    return PassiveWait::Retracted;
                }
                // Not on the list and not (yet) GRANTED is impossible
                // under the list lock, so a failed unlink means our
                // grant is already published: loop to observe it.
                continue;
            }
            // Timed admission: expire by the same delisting move.
            let mut park_bound = PASSIVE_RESCUE_BOUND;
            if let Some(d) = deadline_ns {
                let now = asl_runtime::clock::now_ns();
                if now >= d {
                    if self.try_unlink(node_ptr) {
                        return PassiveWait::TimedOut;
                    }
                    // Grant already published: observe it above.
                    continue;
                }
                // Never oversleep the deadline by a full rescue bound.
                park_bound = park_bound.min(std::time::Duration::from_nanos(d - now));
            }
            // Substrate-aware: on the simulator this charges a
            // bounded virtual wait and returns (so the rescue check
            // above reruns in virtual time); on the OS it parks with
            // a timeout bounding the rescue latency. Spurious returns
            // just re-check the predicate.
            asl_runtime::substrate::park_or(|| std::thread::park_timeout(park_bound));
        }
    }

    /// Remove our own (still-WAITING) node from the passive list.
    /// Returns `false` if the node is no longer listed — which, since
    /// granters pop and store GRANTED under the list lock, means a
    /// grant is already published for us.
    fn try_unlink(&self, target: *mut PassiveNode) -> bool {
        self.list_lock.lock();
        let found = unsafe {
            let head = self.head.get();
            let mut cur = *head;
            let mut prev: *mut PassiveNode = ptr::null_mut();
            while !cur.is_null() && cur != target {
                prev = cur;
                cur = (*cur).next.get();
            }
            if cur.is_null() {
                false
            } else {
                if prev.is_null() {
                    *head = (*cur).next.get();
                } else {
                    (*prev).next.set((*cur).next.get());
                }
                true
            }
        };
        if found {
            self.passive_len.fetch_sub(1, Ordering::SeqCst);
        }
        self.list_lock.unlock(());
        found
    }

    /// Leave the admitted set. The freed slot is deliberately *not*
    /// handed to a passive waiter: the expected case is that a
    /// circulating thread (this one, after its think time) reclaims
    /// it with zero park/unpark traffic, which is what keeps the
    /// restricted set cache-warm and syscall-free. Passive waiters
    /// cover the other case themselves — each re-checks for headroom
    /// at least every [`PASSIVE_RESCUE_BOUND`] and self-admits — and
    /// long-term fairness comes from the periodic reintroduction
    /// pulse: every `reintroduce_period` exits that happen while
    /// waiters are passive, the *oldest* one is force-admitted.
    pub fn exit(&self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
        if self.passive_len.load(Ordering::SeqCst) == 0 {
            return;
        }
        let h = self.handovers.fetch_add(1, Ordering::Relaxed) + 1;
        if h >= self.reintroduce_period {
            if self.wake_one(true) {
                self.handovers.store(0, Ordering::Relaxed);
            } else {
                // Overshoot in flight or racing retract: stay due so
                // the next exit retries immediately.
                self.handovers
                    .store(self.reintroduce_period, Ordering::Relaxed);
            }
        }
    }

    /// Admit passive waiters into fresh headroom (after the limit
    /// grew). Returns how many were admitted.
    pub fn fill(&self) -> u32 {
        let mut n = 0;
        while self.passive_len.load(Ordering::SeqCst) > 0 && self.wake_one(false) {
            n += 1;
        }
        n
    }

    /// Transfer one admission slot to a passive waiter. `forced` is
    /// the reintroduction pulse: it takes the *oldest* waiter (LIFO
    /// tail) and may overshoot the limit by exactly one; a normal
    /// wake takes the head and respects the limit.
    fn wake_one(&self, forced: bool) -> bool {
        self.list_lock.lock();
        // Reserve the slot before popping, so a node is never removed
        // without an admission to hand it.
        let mut spin = asl_runtime::relax::Spin::new();
        let reserved = loop {
            let a = self.active.load(Ordering::Relaxed);
            let bound = if forced {
                self.limit.load(Ordering::Relaxed).saturating_add(1)
            } else {
                self.limit.load(Ordering::Relaxed)
            };
            if a >= bound {
                break false;
            }
            match self
                .active
                .compare_exchange_weak(a, a + 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.note_peak(a + 1);
                    break true;
                }
                Err(_) => {
                    spin.relax();
                }
            }
        };
        if !reserved {
            self.list_lock.unlock(());
            return false;
        }
        let node = unsafe {
            if forced {
                self.pop_tail()
            } else {
                self.pop_head()
            }
        };
        match node {
            Some(n) => {
                self.passive_len.fetch_sub(1, Ordering::SeqCst);
                if forced {
                    self.reintroduced.fetch_add(1, Ordering::Relaxed);
                }
                // Clone the handle first: the GRANTED store hands the
                // node back to its owner, which may return (and free
                // the stack frame) immediately.
                let t = unsafe { (*n).thread.clone() };
                unsafe { (*n).state.store(GRANTED, Ordering::Release) };
                self.list_lock.unlock(());
                // On the simulator the waiter re-checks out of its
                // bounded-wait park loop; on the OS this is the wake.
                t.unpark();
                true
            }
            None => {
                // Racing retracts emptied the list. Undo the
                // reservation while still serialized with publishers
                // (their Dekker check runs under this lock too).
                self.active.fetch_sub(1, Ordering::SeqCst);
                self.list_lock.unlock(());
                false
            }
        }
    }

    /// Pop the most recent passive waiter. Caller holds `list_lock`.
    unsafe fn pop_head(&self) -> Option<*mut PassiveNode> {
        let head = self.head.get();
        let n = *head;
        if n.is_null() {
            return None;
        }
        *head = (*n).next.get();
        Some(n)
    }

    /// Pop the *oldest* passive waiter. Caller holds `list_lock`.
    /// O(len) walk, amortized over `reintroduce_period` handovers.
    unsafe fn pop_tail(&self) -> Option<*mut PassiveNode> {
        let head = self.head.get();
        let mut cur = *head;
        if cur.is_null() {
            return None;
        }
        let mut prev: *mut PassiveNode = ptr::null_mut();
        while !(*cur).next.get().is_null() {
            prev = cur;
            cur = (*cur).next.get();
        }
        if prev.is_null() {
            *head = ptr::null_mut();
        } else {
            (*prev).next.set(ptr::null_mut());
        }
        Some(cur)
    }
}

/// Tuning for a [`Gcr`]/[`GcrPlain`] wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcrConfig {
    /// Starting admission bound.
    pub initial_limit: u32,
    /// Controller floor (≥ 1).
    pub min_limit: u32,
    /// Controller ceiling.
    pub max_limit: u32,
    /// Force-admit the oldest passive waiter every this many
    /// handovers that occur while waiters are passive.
    pub reintroduce_period: u32,
    /// Controller tick every this many acquisitions; `0` disables the
    /// controller entirely (fixed bound).
    pub ctl_period: u32,
    /// Shrink only when the cell's consecutive-contended streak is at
    /// least this long — sustained saturation, not a contention blip.
    pub shrink_streak: u64,
    /// Shrink when the windowed mean hold time exceeds the best
    /// observed window by more than this percentage (hold-time
    /// inflation = holders being preempted = collapse onset).
    pub inflation_pct: u32,
}

impl Default for GcrConfig {
    fn default() -> Self {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(1);
        GcrConfig {
            initial_limit: cpus.clamp(2, 8),
            min_limit: 1,
            max_limit: cpus.clamp(2, 8) * 2,
            reintroduce_period: 1024,
            ctl_period: 64,
            shrink_streak: 64,
            inflation_pct: 100,
        }
    }
}

impl GcrConfig {
    /// A static admission bound `k`: no controller, `k` forever.
    pub fn fixed(k: u32) -> Self {
        GcrConfig {
            initial_limit: k,
            min_limit: k,
            max_limit: k,
            ctl_period: 0,
            ..Default::default()
        }
    }

    fn validate(&self) {
        assert!(self.min_limit >= 1, "min_limit must be >= 1");
        assert!(
            self.min_limit <= self.initial_limit && self.initial_limit <= self.max_limit,
            "need min_limit <= initial_limit <= max_limit"
        );
        assert!(
            self.reintroduce_period >= 1,
            "reintroduce period must be >= 1"
        );
    }
}

/// Grow while the wrapped lock is busy for less than this share of a
/// controller window's wall time (and waiters sit passive): the gate
/// is binding, but the lock itself still has headroom.
pub const GROW_UTIL_PCT: u64 = 85;

/// Controller bookkeeping, mutated only while the wrapped lock is
/// held (release-path ticks), so plain fields suffice.
struct CtlState {
    since_tick: u32,
    last: TelemetrySnapshot,
    /// Best (lowest) windowed mean hold time observed — the
    /// uninflated reference the shrink signal compares against.
    baseline_hold: f64,
    /// Wall-clock stamp of the previous tick; `0` until the first
    /// tick completes, so the first window never computes utilization
    /// against an unbounded interval.
    window_start_ns: u64,
}

/// The adaptive-K controller shared by [`Gcr`] and [`GcrPlain`].
struct Controller {
    cfg: GcrConfig,
    state: UnsafeCell<CtlState>,
    grows: AtomicU64,
    shrinks: AtomicU64,
}

// Safety: `state` is only touched from `tick`, whose contract is
// "caller holds the wrapped lock", which serializes all access.
unsafe impl Sync for Controller {}

impl Controller {
    fn new(cfg: GcrConfig) -> Self {
        Controller {
            cfg,
            state: UnsafeCell::new(CtlState {
                since_tick: 0,
                last: TelemetrySnapshot::default(),
                baseline_hold: 0.0,
                window_start_ns: 0,
            }),
            grows: AtomicU64::new(0),
            shrinks: AtomicU64::new(0),
        }
    }

    /// One release-path tick.
    ///
    /// # Safety
    /// The caller must hold the wrapped lock, making this call
    /// exclusive.
    unsafe fn tick(&self, cell: &TelemetryCell, gate: &Gate) {
        if self.cfg.ctl_period == 0 {
            return;
        }
        let st = &mut *self.state.get();
        st.since_tick += 1;
        if st.since_tick < self.cfg.ctl_period {
            return;
        }
        st.since_tick = 0;
        let now = now_ns();
        let wall_ns = if st.window_start_ns == 0 {
            0
        } else {
            now.saturating_sub(st.window_start_ns)
        };
        st.window_start_ns = now;
        let snap = cell.snapshot();
        let w = snap.delta(&st.last);
        st.last = snap;
        if w.acquisitions == 0 {
            return;
        }
        let avg_hold = w.hold_ns as f64 / w.acquisitions as f64;
        if avg_hold > 0.0 && (st.baseline_hold == 0.0 || avg_hold < st.baseline_hold) {
            st.baseline_hold = avg_hold;
        }
        let limit = gate.limit();
        let inflated = st.baseline_hold > 0.0
            && avg_hold > st.baseline_hold * (1.0 + self.cfg.inflation_pct as f64 / 100.0);
        // Queueing: time spent waiting inside the wrapped lock dwarfs
        // time spent holding it. Holds can stay perfectly clean while
        // this happens — a reordering lock hands off to runnable
        // threads precisely to keep holds short under oversubscription
        // — so it is a shrink signal of its own, not a variant of
        // hold inflation. The 4x band (grow below 1x, shrink above
        // 4x) is the hysteresis that keeps the two rules from
        // fighting.
        let queueing = w.wait_ns > w.hold_ns.saturating_mul(4);
        if ((inflated && cell.contended_streak() >= self.cfg.shrink_streak) || queueing)
            && limit > self.cfg.min_limit
        {
            // Collapse onset: holds inflating under back-to-back
            // contention means admitted threads are preempting each
            // other. Fewer runnable waiters, shorter holds.
            gate.set_limit(limit - 1);
            self.shrinks.fetch_add(1, Ordering::Relaxed);
        } else if limit < self.cfg.max_limit
            && (w.contended == 0
                || (!inflated
                    && gate.passive_len() > 0
                    && wall_ns > 0
                    && w.wait_ns < w.hold_ns
                    && w.hold_ns.saturating_mul(100) < wall_ns.saturating_mul(GROW_UTIL_PCT)))
        {
            // Two "restriction is not binding tightly enough" shapes:
            // the admitted set ran a whole window uncontended, or —
            // with threads parked passive — the wrapped lock was busy
            // under GROW_UTIL_PCT of the window's wall time AND
            // waiting inside it had not overtaken holding. The latter
            // pair is what think-heavy circulation looks like: each
            // admitted thread only wants the lock a fraction of the
            // time, so throughput scales with K until the lock
            // saturates. The wait < hold guard matters on an
            // oversubscribed host: wall-time utilization stays low
            // exactly when waiters burn the CPU the holder needs, so
            // utilization alone would grow straight into the collapse
            // the gate exists to prevent.
            gate.set_limit(limit + 1);
            self.grows.fetch_add(1, Ordering::Relaxed);
            gate.fill();
        }
    }
}

/// Concurrency-restricted wrapper over any [`RawLock`] (see module
/// docs). The token passes through unchanged, so the wrapper composes
/// with every layer built on `RawLock` — guards, the object-safe
/// facade, instrumentation.
pub struct Gcr<L: RawLock> {
    inner: L,
    gate: Gate,
    ctl: Controller,
    cell: TelemetryCell,
}

impl<L: RawLock> Gcr<L> {
    /// Wrap `inner` with the default (host-sized, adaptive) config.
    pub fn new(inner: L) -> Self {
        Self::with_config(inner, GcrConfig::default())
    }

    /// Wrap `inner` with an explicit config.
    pub fn with_config(inner: L, cfg: GcrConfig) -> Self {
        cfg.validate();
        Gcr {
            inner,
            gate: Gate::new(cfg.initial_limit, cfg.reintroduce_period),
            ctl: Controller::new(cfg),
            // Hold/wait sampling on: it is the controller's signal.
            cell: TelemetryCell::sampled(),
        }
    }

    /// The wrapped lock.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Current admission bound `K`.
    pub fn limit(&self) -> u32 {
        self.gate.limit()
    }

    /// Threads currently admitted.
    pub fn active(&self) -> u32 {
        self.gate.active()
    }

    /// Passive (parked) waiters right now.
    pub fn passive_len(&self) -> u32 {
        self.gate.passive_len()
    }

    /// Highest admitted-set size ever reached (≤ `K`, or `K + 1`
    /// transiently during reintroduction).
    pub fn peak_active(&self) -> u32 {
        self.gate.peak_active()
    }

    /// Forced reintroductions performed (fairness pulses).
    pub fn reintroduced(&self) -> u64 {
        self.gate.reintroduced()
    }

    /// Controller grow decisions taken.
    pub fn grows(&self) -> u64 {
        self.ctl.grows.load(Ordering::Relaxed)
    }

    /// Controller shrink decisions taken.
    pub fn shrinks(&self) -> u64 {
        self.ctl.shrinks.load(Ordering::Relaxed)
    }

    /// The telemetry the controller feeds on.
    pub fn telemetry(&self) -> &TelemetryCell {
        &self.cell
    }
}

impl<L: RawLock + Default> Default for Gcr<L> {
    fn default() -> Self {
        Self::new(L::default())
    }
}

impl<L: RawLock> RawLock for Gcr<L> {
    type Token = L::Token;

    fn lock(&self) -> L::Token {
        let waited = self.gate.admit();
        let contended = waited || self.inner.is_locked();
        let t0 = if self.cell.sampling() && contended {
            now_ns()
        } else {
            0
        };
        let token = self.inner.lock();
        if t0 != 0 {
            self.cell.add_wait_ns(now_ns().saturating_sub(t0));
        }
        self.cell.record_acquisition(contended);
        self.cell.note_hold_start();
        token
    }

    fn try_lock(&self) -> Option<L::Token> {
        if !self.gate.try_admit() {
            return None;
        }
        match self.inner.try_lock() {
            Some(token) => {
                self.cell.record_acquisition(false);
                self.cell.note_hold_start();
                Some(token)
            }
            None => {
                self.gate.exit();
                None
            }
        }
    }

    fn unlock(&self, token: L::Token) {
        self.cell.note_hold_end();
        // Safety: we hold the wrapped lock until the next line.
        unsafe { self.ctl.tick(&self.cell, &self.gate) };
        self.inner.unlock(token);
        self.gate.exit();
    }

    fn is_locked(&self) -> bool {
        self.inner.is_locked() || self.gate.passive_len() > 0
    }

    const NAME: &'static str = "gcr";
}

// Deliberately NOT FifoLock: admission control reorders waiters (the
// passive LIFO jumps recent arrivals ahead of parked ones).

impl<L: crate::timed::RawTimedLock> crate::timed::RawTimedLock for Gcr<L> {
    /// Timed acquisition in two halves sharing one deadline: a timed
    /// admission ([`Gate::admit_until`], built on the passive
    /// self-rescue path) and then the inner lock's own timed wait. An
    /// inner timeout rolls the admission back, so a `None` leaves no
    /// residue in either layer.
    fn try_lock_until(&self, deadline_ns: u64) -> Option<L::Token> {
        let waited = self.gate.admit_until(deadline_ns)?;
        let contended = waited || self.inner.is_locked();
        let t0 = if self.cell.sampling() && contended {
            now_ns()
        } else {
            0
        };
        match self.inner.try_lock_until(deadline_ns) {
            Some(token) => {
                if t0 != 0 {
                    self.cell.add_wait_ns(now_ns().saturating_sub(t0));
                }
                self.cell.record_acquisition(contended);
                self.cell.note_hold_start();
                Some(token)
            }
            None => {
                self.gate.exit();
                None
            }
        }
    }
}

/// Concurrency-restricted wrapper over a runtime-chosen lock — the
/// registry's `gcr-<name>` specs materialize these. The inner lock's
/// tokens pass through untouched (releases delegate, so debug-build
/// ownership tags keep working).
pub struct GcrPlain {
    inner: Arc<dyn PlainLock>,
    gate: Gate,
    ctl: Controller,
    cell: TelemetryCell,
}

impl GcrPlain {
    /// Wrap `inner` with the default (host-sized, adaptive) config.
    pub fn new(inner: Arc<dyn PlainLock>) -> Self {
        Self::with_config(inner, GcrConfig::default())
    }

    /// Wrap `inner` with an explicit config.
    pub fn with_config(inner: Arc<dyn PlainLock>, cfg: GcrConfig) -> Self {
        cfg.validate();
        GcrPlain {
            inner,
            gate: Gate::new(cfg.initial_limit, cfg.reintroduce_period),
            ctl: Controller::new(cfg),
            cell: TelemetryCell::sampled(),
        }
    }

    /// Current admission bound `K`.
    pub fn limit(&self) -> u32 {
        self.gate.limit()
    }

    /// Threads currently admitted.
    pub fn active(&self) -> u32 {
        self.gate.active()
    }

    /// Passive (parked) waiters right now.
    pub fn passive_len(&self) -> u32 {
        self.gate.passive_len()
    }

    /// Highest admitted-set size ever reached.
    pub fn peak_active(&self) -> u32 {
        self.gate.peak_active()
    }

    /// Forced reintroductions performed.
    pub fn reintroduced(&self) -> u64 {
        self.gate.reintroduced()
    }

    /// Controller grow decisions taken.
    pub fn grows(&self) -> u64 {
        self.ctl.grows.load(Ordering::Relaxed)
    }

    /// Controller shrink decisions taken.
    pub fn shrinks(&self) -> u64 {
        self.ctl.shrinks.load(Ordering::Relaxed)
    }

    /// The telemetry the controller feeds on.
    pub fn telemetry(&self) -> &TelemetryCell {
        &self.cell
    }
}

impl PlainLock for GcrPlain {
    fn acquire(&self) -> PlainToken {
        let waited = self.gate.admit();
        let contended = waited || self.inner.held();
        let t0 = if self.cell.sampling() && contended {
            now_ns()
        } else {
            0
        };
        let token = self.inner.acquire();
        if t0 != 0 {
            self.cell.add_wait_ns(now_ns().saturating_sub(t0));
        }
        self.cell.record_acquisition(contended);
        self.cell.note_hold_start();
        token
    }

    fn try_acquire(&self) -> Option<PlainToken> {
        if !self.gate.try_admit() {
            return None;
        }
        match self.inner.try_acquire() {
            Some(token) => {
                self.cell.record_acquisition(false);
                self.cell.note_hold_start();
                Some(token)
            }
            None => {
                self.gate.exit();
                None
            }
        }
    }

    fn release(&self, token: PlainToken) {
        self.cell.note_hold_end();
        // Safety: we hold the wrapped lock until the next line.
        unsafe { self.ctl.tick(&self.cell, &self.gate) };
        self.inner.release(token);
        self.gate.exit();
    }

    fn held(&self) -> bool {
        self.inner.held() || self.gate.passive_len() > 0
    }

    fn lock_name(&self) -> &'static str {
        "gcr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::GuardedLock;
    use crate::{McsLock, TicketLock};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn uncontended_roundtrip_and_accessors() {
        let lock = Gcr::with_config(McsLock::new(), GcrConfig::fixed(2));
        assert_eq!(lock.limit(), 2);
        assert_eq!(lock.active(), 0);
        {
            let _g = lock.guard();
            assert!(RawLock::is_locked(&lock));
            assert_eq!(lock.active(), 1);
        }
        assert!(!RawLock::is_locked(&lock));
        assert_eq!(lock.active(), 0);
        assert_eq!(lock.peak_active(), 1);
        assert_eq!(lock.passive_len(), 0);
        assert_eq!(lock.telemetry().snapshot().acquisitions, 1);
    }

    #[test]
    fn try_lock_respects_gate_and_inner() {
        let lock = Gcr::with_config(TicketLock::new(), GcrConfig::fixed(1));
        lock.try_lock().expect("free");
        // Gate full: a second try must fail *and* roll back cleanly.
        assert!(lock.try_lock().is_none());
        lock.unlock(());
        lock.try_lock().expect("free again after rollback");
        lock.unlock(());
        assert_eq!(lock.active(), 0);
    }

    #[test]
    fn mutual_exclusion_and_admission_bound_under_stress() {
        const THREADS: usize = 8;
        const OPS: u64 = 2_000;
        struct Shared {
            lock: Gcr<McsLock>,
            value: UnsafeCell<u64>,
        }
        unsafe impl Sync for Shared {}
        let s = Arc::new(Shared {
            // Tiny period so reintroduction churns during the run.
            lock: Gcr::with_config(
                McsLock::new(),
                GcrConfig {
                    reintroduce_period: 8,
                    ..GcrConfig::fixed(2)
                },
            ),
            value: UnsafeCell::new(0),
        });
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..OPS {
                        let t = s.lock.lock();
                        unsafe { *s.value.get() += 1 };
                        s.lock.unlock(t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(unsafe { *s.value.get() }, THREADS as u64 * OPS);
        // The hard invariant: K + 1 at most, ever (the +1 is the
        // reintroduction overshoot).
        assert!(
            s.lock.peak_active() <= 3,
            "admitted set exceeded K+1: peak={}",
            s.lock.peak_active()
        );
        assert_eq!(s.lock.active(), 0);
        assert_eq!(s.lock.passive_len(), 0);
        assert_eq!(
            s.lock.telemetry().snapshot().acquisitions,
            THREADS as u64 * OPS
        );
    }

    #[test]
    fn controller_grows_when_uncontended() {
        let lock = Gcr::with_config(
            McsLock::new(),
            GcrConfig {
                initial_limit: 1,
                min_limit: 1,
                max_limit: 3,
                ctl_period: 4,
                ..GcrConfig::default()
            },
        );
        // 3 windows of 4 uncontended acquisitions: grow 1 -> 3 and cap.
        for _ in 0..12 {
            let t = lock.lock();
            lock.unlock(t);
        }
        assert_eq!(lock.limit(), 3);
        assert_eq!(lock.grows(), 2);
        assert_eq!(lock.shrinks(), 0);
    }

    #[test]
    fn controller_shrinks_on_inflated_contended_holds() {
        // Zero inflation tolerance + tiny streak requirement: any
        // window whose mean hold exceeds the best window while two
        // acquisitions ran back-to-back contended must shrink.
        let lock = Arc::new(Gcr::with_config(
            McsLock::new(),
            GcrConfig {
                initial_limit: 4,
                min_limit: 1,
                max_limit: 4,
                ctl_period: 8,
                shrink_streak: 2,
                inflation_pct: 0,
                reintroduce_period: 64,
            },
        ));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let phase = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let lock = lock.clone();
                let stop = stop.clone();
                let phase = phase.clone();
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let t = lock.lock();
                        // Phase 0: short holds (establish baseline).
                        // Phase 1: 20x longer holds (inflation).
                        let ns = if phase.load(Ordering::Relaxed) == 0 {
                            5_000
                        } else {
                            100_000
                        };
                        asl_runtime::clock::busy_wait_ns(ns);
                        lock.unlock(t);
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(100));
        phase.store(1, Ordering::Relaxed);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        while lock.shrinks() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
        assert!(
            lock.shrinks() >= 1,
            "controller never shrank under inflated contended holds \
             (limit={}, snapshot={:?})",
            lock.limit(),
            lock.telemetry().snapshot()
        );
        assert!(lock.limit() < 4);
    }

    #[test]
    fn reintroduction_rotates_the_admitted_set() {
        // K=1 and a tiny period: passive waiters must rotate in.
        const THREADS: usize = 4;
        let lock = Arc::new(Gcr::with_config(
            McsLock::new(),
            GcrConfig {
                reintroduce_period: 4,
                ..GcrConfig::fixed(1)
            },
        ));
        let counts: Arc<Vec<AtomicU64>> =
            Arc::new((0..THREADS).map(|_| AtomicU64::new(0)).collect());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let lock = lock.clone();
                let counts = counts.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let t = lock.lock();
                        counts[i].fetch_add(1, Ordering::Relaxed);
                        lock.unlock(t);
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                c.load(Ordering::Relaxed) > 0,
                "thread {i} starved despite reintroduction: {:?}",
                counts
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .collect::<Vec<_>>()
            );
        }
        assert!(lock.peak_active() <= 2, "K+1 bound violated");
    }

    #[test]
    fn plain_wrapper_delegates_and_restricts() {
        let lock: Arc<dyn PlainLock> = Arc::new(GcrPlain::with_config(
            Arc::new(McsLock::new()),
            GcrConfig::fixed(2),
        ));
        let t = lock.acquire();
        assert!(lock.held());
        lock.release(t);
        assert!(!lock.held());
        assert_eq!(lock.lock_name(), "gcr");
    }

    #[test]
    fn gate_standalone_admits_and_fills() {
        let gate = Gate::new(2, 64);
        assert!(gate.try_admit());
        assert!(gate.try_admit());
        assert!(!gate.try_admit(), "limit reached");
        gate.exit();
        assert!(gate.try_admit());
        gate.set_limit(3);
        assert!(gate.try_admit());
        assert!(!gate.try_admit());
        gate.exit();
        gate.exit();
        gate.exit();
        assert_eq!(gate.active(), 0);
        assert_eq!(gate.peak_active(), 3);
        assert_eq!(gate.fill(), 0, "no passive waiters to fill with");
    }

    #[test]
    #[should_panic(expected = "admission limit")]
    fn zero_limit_rejected() {
        let _ = Gate::new(0, 64);
    }
}
