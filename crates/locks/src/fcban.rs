//! `FcBan` — a usage-*fair* banning combiner (after the
//! "Usage-Fairness in Delegation-Styled Locks" design in
//! SNIPPETS.md).
//!
//! Classic combining locks are throughput-fair at best: a thread with
//! long critical sections consumes a disproportionate share of the
//! *lock's time* while still getting one op served per pass, starving
//! nobody but slowing everybody. `FcBan` meters each participant's
//! cumulative critical-section time (via `asl_runtime::clock`) and
//! compares it with its proportional share of the total. A thread
//! that overdraws is **banned**: its next submission is delayed by
//! exactly the overage (served submitter-side with
//! [`busy_wait_ns`]), after which its meter is reset to its share —
//! the debt is repaid by the ban, so ban durations stay bounded
//! instead of compounding.
//!
//! The execution engine is flat-combining (publication array +
//! opportunistic combiner) so the fairness deltas measured against
//! [`FlatCombiner`](crate::flatcomb::FlatCombiner) and
//! [`CcSynch`](crate::ccsynch::CcSynch) isolate the banning policy.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use asl_runtime::clock::{busy_wait_ns, now_ns};
use asl_runtime::relax::Spin;

use crate::delegation::{
    claim_slot, DelegationHandle, DelegationLock, Slot, SlotsExhausted, MAX_SLOTS, SLOT_PENDING,
};
use crate::telemetry::{register_cell, TelemetryCell};

/// Default tolerance before a thread is banned: overages below this
/// are forgiven, so clock jitter on symmetric workloads never bans.
pub const DEFAULT_SLACK_NS: u64 = 20_000;

/// One participant: a publication slot plus its usage meter.
struct BanSlot<Op, Out> {
    slot: Slot<Op, Out>,
    /// Cumulative critical-section time charged to this thread.
    cs_ns: AtomicU64,
    /// Absolute deadline before which this thread may not submit
    /// (0 = not banned). Written by the combiner, consumed by the
    /// owner.
    banned_until: AtomicU64,
}

impl<Op, Out> BanSlot<Op, Out> {
    fn new() -> Self {
        BanSlot {
            slot: Slot::new(),
            cs_ns: AtomicU64::new(0),
            banned_until: AtomicU64::new(0),
        }
    }
}

struct BanShared<T, Op, Out, F: Fn(&mut T, Op) -> Out> {
    slots: Box<[BanSlot<Op, Out>]>,
    next_slot: AtomicUsize,
    combiner_lock: AtomicBool,
    data: UnsafeCell<T>,
    apply: F,
    total_cs_ns: AtomicU64,
    slack_ns: u64,
    /// Combiner-wait attribution (`<label>.combine`) when profiled.
    combine_cell: Option<Arc<TelemetryCell>>,
    /// Ban-wait attribution (`<label>.ban`) when profiled.
    ban_cell: Option<Arc<TelemetryCell>>,
}

// SAFETY: `data` is only touched under `combiner_lock`; slot payloads
// are ordered by the seq protocol.
unsafe impl<T: Send, Op: Send, Out: Send, F: Fn(&mut T, Op) -> Out + Send + Sync> Send
    for BanShared<T, Op, Out, F>
{
}
unsafe impl<T: Send, Op: Send, Out: Send, F: Fn(&mut T, Op) -> Out + Send + Sync> Sync
    for BanShared<T, Op, Out, F>
{
}

impl<T, Op, Out, F: Fn(&mut T, Op) -> Out> BanShared<T, Op, Out, F> {
    /// Execute every pending op, metering each submitter and banning
    /// overdrawn ones.
    ///
    /// # Safety
    /// Caller must hold `combiner_lock`.
    unsafe fn combine_pass(&self) -> usize {
        let data = self.data.get();
        let claimed = self.next_slot.load(Ordering::Acquire).min(MAX_SLOTS);
        let n = claimed.max(1) as u64;
        let mut served = 0usize;
        for bs in &self.slots[..claimed] {
            if bs.slot.seq.load(Ordering::Acquire) != SLOT_PENDING {
                continue;
            }
            let t0 = now_ns();
            // SAFETY: combiner_lock held; PENDING acquired.
            bs.slot.execute(data, &self.apply);
            let dt = now_ns().saturating_sub(t0);
            let mine = bs.cs_ns.load(Ordering::Relaxed).saturating_add(dt);
            let total = self
                .total_cs_ns
                .fetch_add(dt, Ordering::Relaxed)
                .saturating_add(dt);
            let share = total / n;
            if mine > share.saturating_add(self.slack_ns) {
                // Ban for the overage; metering restarts at the fair
                // share — the ban repays the debt, so bans stay
                // proportional to the *latest* overdraw, not the
                // thread's whole history.
                bs.banned_until
                    .store(now_ns().saturating_add(mine - share), Ordering::Relaxed);
                bs.cs_ns.store(share, Ordering::Relaxed);
            } else {
                bs.cs_ns.store(mine, Ordering::Relaxed);
            }
            served += 1;
        }
        served
    }
}

/// Usage-fair banning combiner over a value `T`. See the [module
/// docs](self) for the banning policy.
pub struct FcBan<T, Op, Out, F: Fn(&mut T, Op) -> Out> {
    shared: Arc<BanShared<T, Op, Out, F>>,
}

impl<T, Op, Out, F> FcBan<T, Op, Out, F>
where
    T: Send,
    Op: Send,
    Out: Send,
    F: Fn(&mut T, Op) -> Out + Send + Sync,
{
    /// Wrap `value`; `apply` executes one operation against it.
    pub fn new(value: T, apply: F) -> Self {
        Self::with_slack(value, apply, DEFAULT_SLACK_NS)
    }

    /// [`FcBan::new`] with an explicit ban tolerance (overages up to
    /// `slack_ns` are forgiven).
    pub fn with_slack(value: T, apply: F, slack_ns: u64) -> Self {
        Self::build(value, apply, slack_ns, None, None)
    }

    /// [`FcBan::new`] with combiner-wait and ban-wait telemetry
    /// registered as `<label>.combine` / `<label>.ban` in the
    /// process-wide profiling registry.
    pub fn instrumented(value: T, apply: F, label: &str) -> Self {
        let combine = Arc::new(TelemetryCell::sampled());
        let ban = Arc::new(TelemetryCell::sampled());
        register_cell(format!("{label}.combine"), combine.clone());
        register_cell(format!("{label}.ban"), ban.clone());
        Self::build(value, apply, DEFAULT_SLACK_NS, Some(combine), Some(ban))
    }

    fn build(
        value: T,
        apply: F,
        slack_ns: u64,
        combine_cell: Option<Arc<TelemetryCell>>,
        ban_cell: Option<Arc<TelemetryCell>>,
    ) -> Self {
        let slots: Box<[BanSlot<Op, Out>]> = (0..MAX_SLOTS).map(|_| BanSlot::new()).collect();
        FcBan {
            shared: Arc::new(BanShared {
                slots,
                next_slot: AtomicUsize::new(0),
                combiner_lock: AtomicBool::new(false),
                data: UnsafeCell::new(value),
                apply,
                total_cs_ns: AtomicU64::new(0),
                slack_ns,
                combine_cell,
                ban_cell,
            }),
        }
    }

    /// Claim a participant slot. Call once per thread; the handle
    /// submits operations.
    pub fn try_register(&self) -> Result<BanHandle<T, Op, Out, F>, SlotsExhausted> {
        let idx = claim_slot(&self.shared.next_slot)?;
        Ok(BanHandle {
            idx,
            shared: self.shared.clone(),
        })
    }

    /// [`FcBan::try_register`], panicking on exhaustion.
    ///
    /// # Panics
    /// Panics with [`SlotsExhausted`] when more than [`MAX_SLOTS`]
    /// handles are claimed.
    pub fn register(&self) -> BanHandle<T, Op, Out, F> {
        self.try_register().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Consume, returning the inner value.
    ///
    /// # Panics
    /// Panics if handles still exist.
    pub fn into_inner(self) -> T {
        let shared =
            Arc::try_unwrap(self.shared).unwrap_or_else(|_| panic!("handles still registered"));
        shared.data.into_inner()
    }
}

impl<T, Op, Out, F> DelegationLock for FcBan<T, Op, Out, F>
where
    T: Send + 'static,
    Op: Send + 'static,
    Out: Send + 'static,
    F: Fn(&mut T, Op) -> Out + Send + Sync + 'static,
{
    type Op = Op;
    type Out = Out;
    type Handle = BanHandle<T, Op, Out, F>;

    fn try_register(&self) -> Result<Self::Handle, SlotsExhausted> {
        FcBan::try_register(self)
    }

    fn delegation_name(&self) -> &'static str {
        "fc-ban"
    }
}

/// A registered participant of an [`FcBan`]. Serves any outstanding
/// ban before each submission.
pub struct BanHandle<T, Op, Out, F: Fn(&mut T, Op) -> Out> {
    idx: usize,
    shared: Arc<BanShared<T, Op, Out, F>>,
}

impl<T, Op, Out, F> BanHandle<T, Op, Out, F>
where
    T: Send,
    Op: Send,
    Out: Send,
    F: Fn(&mut T, Op) -> Out + Send + Sync,
{
    /// Serve this thread's outstanding ban, if any: the combiner set
    /// an absolute re-entry deadline; wait it out here so a banned
    /// thread's delay never blocks the combiner.
    fn serve_ban(&self) {
        let bs = &self.shared.slots[self.idx];
        let until = bs.banned_until.swap(0, Ordering::Relaxed);
        if until == 0 {
            return;
        }
        let now = now_ns();
        if until <= now {
            return;
        }
        let wait = until - now;
        busy_wait_ns(wait);
        if let Some(cell) = self.shared.ban_cell.as_deref() {
            if cell.armed() {
                cell.record_acquisition(true);
                cell.add_wait_ns(wait);
            }
        }
    }

    /// Apply `op`, possibly becoming the combiner; banned threads
    /// first wait out their overage.
    pub fn apply(&self, op: Op) -> Out {
        self.serve_ban();
        let shared = &*self.shared;
        let slot = &shared.slots[self.idx].slot;
        // SAFETY: this handle owns the slot and it is EMPTY (the
        // previous apply consumed the result).
        unsafe { slot.publish(op) };

        let cell = shared.combine_cell.as_deref();
        let armed = cell.is_some_and(TelemetryCell::armed);
        let t0 = if armed { now_ns() } else { 0 };
        let mut spin = Spin::new();
        loop {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq != SLOT_PENDING {
                if let (true, Some(cell)) = (armed, cell) {
                    cell.record_acquisition(true);
                    cell.add_wait_ns(now_ns().saturating_sub(t0));
                }
                // SAFETY: observed DONE/PANICKED with acquire.
                return unsafe { slot.take_result(seq) };
            }
            if !shared.combiner_lock.swap(true, Ordering::Acquire) {
                // SAFETY: we hold combiner_lock.
                unsafe { shared.combine_pass() };
                shared.combiner_lock.store(false, Ordering::Release);
                let seq = slot.seq.load(Ordering::Acquire);
                debug_assert_ne!(seq, SLOT_PENDING, "own op unserved after pass");
                if let (true, Some(cell)) = (armed, cell) {
                    cell.record_acquisition(false);
                    cell.add_wait_ns(now_ns().saturating_sub(t0));
                }
                // SAFETY: observed DONE/PANICKED with acquire.
                return unsafe { slot.take_result(seq) };
            }
            spin.relax();
        }
    }
}

impl<T, Op, Out, F> DelegationHandle for BanHandle<T, Op, Out, F>
where
    T: Send,
    Op: Send,
    Out: Send,
    F: Fn(&mut T, Op) -> Out + Send + Sync,
{
    type Op = Op;
    type Out = Out;

    fn apply(&self, op: Op) -> Out {
        BanHandle::apply(self, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn single_thread_ops() {
        let fc = FcBan::new(0u64, |v, add: u64| {
            *v += add;
            *v
        });
        let h = fc.register();
        assert_eq!(h.apply(5), 5);
        assert_eq!(h.apply(7), 12);
        drop(h);
        assert_eq!(fc.into_inner(), 12);
    }

    #[test]
    fn concurrent_counter() {
        let fc = FcBan::new(0u64, |v, add: u64| {
            *v += add;
            *v
        });
        let mut handles = vec![];
        for _ in 0..8 {
            let h = fc.register();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    h.apply(1);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(fc.into_inner(), 80_000);
    }

    #[test]
    fn overdrawn_thread_is_banned_for_the_overage() {
        // Zero slack + a second registered participant (n=2) makes
        // the single active thread's share total/2, so a 2 ms op
        // overdraws by ~1 ms deterministically.
        let fc = FcBan::with_slack(0u64, |_, heavy_ns: u64| busy_wait_ns(heavy_ns), 0);
        let hog = fc.register();
        let _other = fc.register();
        hog.apply(2_000_000);
        // The ban is served at the head of the next apply: it must
        // take at least ~half the heavy CS (busy_wait_ns guarantees a
        // lower bound).
        let t0 = Instant::now();
        hog.apply(0);
        assert!(
            t0.elapsed().as_nanos() >= 500_000,
            "ban not served: next apply returned in {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn symmetric_threads_with_slack_never_banned() {
        let fc = FcBan::new(0u64, |v, add: u64| {
            *v += add;
            *v
        });
        let mut handles = vec![];
        for _ in 0..4 {
            let h = fc.register();
            handles.push(std::thread::spawn(move || {
                let t0 = Instant::now();
                for _ in 0..5_000 {
                    h.apply(1);
                }
                t0.elapsed()
            }));
        }
        for t in handles {
            // No assertion on time — just that everyone completes
            // (a compounding-ban bug would stall a thread forever).
            t.join().unwrap();
        }
        assert_eq!(fc.into_inner(), 20_000);
    }

    #[test]
    fn slot_exhaustion_is_a_clean_error() {
        let fc = FcBan::new((), |_, _: ()| ());
        let handles: Vec<_> = (0..MAX_SLOTS).map(|_| fc.register()).collect();
        assert_eq!(
            fc.try_register().err(),
            Some(SlotsExhausted { limit: MAX_SLOTS })
        );
        drop(handles);
    }
}
