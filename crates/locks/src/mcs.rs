//! MCS queue lock (Mellor-Crummey & Scott, 1991).
//!
//! The paper's FIFO workhorse and the default lock under the
//! reorderable layer. Waiters spin on their *own* queue node, so the
//! lock scales on SMP; handover is strict FIFO, which is precisely
//! what collapses on AMP (Fig. 1).
//!
//! ## Node management
//!
//! `lock()` returns a token owning the acquirer's queue node; nodes
//! come from a per-thread freelist and are returned on `unlock`.
//! Nodes are heap blocks that are recycled but never freed, bounding
//! the footprint at (live threads × peak nesting depth) nodes — the
//! standard engineering trade for MCS in a library setting.

use std::cell::RefCell;
use std::ptr::{self, NonNull};
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};

use crate::{FifoLock, RawLock};

const WAITING: u32 = 1;
const GRANTED: u32 = 0;
/// A timed waiter that gave up. The node's ownership transfers to
/// whichever releaser reaches it: the releaser *adopts* the node —
/// skips it in the grant chain and reclaims it (see `unlock`).
const ABANDONED: u32 = 2;

/// One queue node. Aligned to a cache line so waiters' spin targets
/// do not false-share.
#[repr(align(64))]
pub struct QNode {
    state: AtomicU32,
    next: AtomicPtr<QNode>,
}

impl QNode {
    fn new() -> Self {
        QNode {
            state: AtomicU32::new(GRANTED),
            next: AtomicPtr::new(ptr::null_mut()),
        }
    }
}

thread_local! {
    static FREELIST: RefCell<Vec<NonNull<QNode>>> = const { RefCell::new(Vec::new()) };
}

fn take_node() -> NonNull<QNode> {
    FREELIST
        .with(|f| f.borrow_mut().pop())
        .unwrap_or_else(|| NonNull::from(Box::leak(Box::new(QNode::new()))))
}

fn put_node(node: NonNull<QNode>) {
    FREELIST.with(|f| f.borrow_mut().push(node));
}

/// Token proving acquisition of an [`McsLock`]; owns the queue node.
pub struct McsToken(NonNull<QNode>);

impl McsToken {
    /// Encode as a raw word (for the object-safe lock facade).
    #[inline]
    pub fn into_raw(self) -> usize {
        self.0.as_ptr() as usize
    }

    /// Rebuild from a word produced by [`McsToken::into_raw`].
    ///
    /// # Safety
    /// `raw` must come from `into_raw` on a token of the same lock
    /// that has not been released yet.
    #[inline]
    pub unsafe fn from_raw(raw: usize) -> Self {
        McsToken(NonNull::new_unchecked(raw as *mut QNode))
    }
}

impl crate::plain::TokenWords for McsToken {
    #[inline]
    fn into_words(self) -> (usize, usize) {
        (self.into_raw(), 0)
    }
    #[inline]
    unsafe fn from_words(a: usize, _b: usize) -> Self {
        Self::from_raw(a)
    }
}

/// The MCS queue lock.
pub struct McsLock {
    tail: AtomicPtr<QNode>,
}

impl McsLock {
    /// New unlocked MCS lock.
    pub fn new() -> Self {
        McsLock {
            tail: AtomicPtr::new(ptr::null_mut()),
        }
    }
}

impl Default for McsLock {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: the queue protocol ensures a node is only recycled after no
// other thread can reach it (see unlock).
unsafe impl Send for McsLock {}
unsafe impl Sync for McsLock {}

impl RawLock for McsLock {
    type Token = McsToken;

    #[inline]
    fn lock(&self) -> McsToken {
        let node = take_node();
        unsafe {
            node.as_ref().state.store(WAITING, Ordering::Relaxed);
            node.as_ref().next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        let pred = self.tail.swap(node.as_ptr(), Ordering::AcqRel);
        if !pred.is_null() {
            // SAFETY: `pred` cannot be recycled until we link
            // ourselves — its owner's unlock spins on `pred.next`.
            let mut spin = asl_runtime::relax::Spin::new();
            unsafe {
                (*pred).next.store(node.as_ptr(), Ordering::Release);
                while node.as_ref().state.load(Ordering::Acquire) == WAITING {
                    spin.relax();
                }
            }
        }
        McsToken(node)
    }

    #[inline]
    fn try_lock(&self) -> Option<McsToken> {
        if !self.tail.load(Ordering::Relaxed).is_null() {
            return None;
        }
        let node = take_node();
        unsafe {
            node.as_ref().state.store(WAITING, Ordering::Relaxed);
            node.as_ref().next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        match self.tail.compare_exchange(
            ptr::null_mut(),
            node.as_ptr(),
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => Some(McsToken(node)),
            Err(_) => {
                put_node(node);
                None
            }
        }
    }

    #[inline]
    fn unlock(&self, token: McsToken) {
        let mut node = token.0;
        // Grant chain: hand to the successor, but a successor that
        // abandoned its timed wait transferred its node to us — adopt
        // it (reclaim) and repeat on *its* successor. Untimed waiters
        // never abandon, so without timed use the loop runs once and
        // the grant CAS cannot fail.
        loop {
            unsafe {
                let mut next = node.as_ref().next.load(Ordering::Acquire);
                if next.is_null() {
                    // No known successor: try to close the queue.
                    if self
                        .tail
                        .compare_exchange(
                            node.as_ptr(),
                            ptr::null_mut(),
                            Ordering::Release,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                    {
                        put_node(node);
                        return;
                    }
                    // A successor is enqueueing; wait for the link.
                    let mut spin = asl_runtime::relax::Spin::new();
                    loop {
                        next = node.as_ref().next.load(Ordering::Acquire);
                        if !next.is_null() {
                            break;
                        }
                        spin.relax();
                    }
                }
                // The CAS races the successor's own WAITING → ABANDONED
                // at its deadline: exactly one side wins, so the lock
                // is either granted or the node is ours to adopt.
                let granted = (*next)
                    .state
                    .compare_exchange(WAITING, GRANTED, Ordering::Release, Ordering::Acquire)
                    .is_ok();
                put_node(node);
                if granted {
                    return;
                }
                debug_assert_eq!((*next).state.load(Ordering::Relaxed), ABANDONED);
                node = NonNull::new_unchecked(next);
            }
        }
    }

    #[inline]
    fn is_locked(&self) -> bool {
        !self.tail.load(Ordering::Relaxed).is_null()
    }

    const NAME: &'static str = "mcs";
}

impl FifoLock for McsLock {}

impl crate::timed::RawTimedLock for McsLock {
    /// Timed abandon: at the deadline the waiter CASes its own node
    /// `WAITING → ABANDONED`. Success transfers node ownership to the
    /// eventual releaser (which adopts and reclaims it — see
    /// `unlock`); failure means the grant already landed, so the
    /// acquisition succeeded at the wire.
    fn try_lock_until(&self, deadline_ns: u64) -> Option<McsToken> {
        let node = take_node();
        unsafe {
            node.as_ref().state.store(WAITING, Ordering::Relaxed);
            node.as_ref().next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        let pred = self.tail.swap(node.as_ptr(), Ordering::AcqRel);
        if pred.is_null() {
            return Some(McsToken(node));
        }
        // SAFETY: `pred` cannot be recycled until we link ourselves —
        // its owner (or adopter) spins on `pred.next`.
        unsafe {
            (*pred).next.store(node.as_ptr(), Ordering::Release);
        }
        let mut spin = asl_runtime::relax::Spin::new();
        loop {
            if unsafe { node.as_ref().state.load(Ordering::Acquire) } == GRANTED {
                return Some(McsToken(node));
            }
            if asl_runtime::clock::coarse_now_ns() >= deadline_ns {
                match unsafe {
                    node.as_ref().state.compare_exchange(
                        WAITING,
                        ABANDONED,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                } {
                    // Abandoned: the node now belongs to the releaser
                    // that reaches it; we must not touch it again.
                    Ok(_) => return None,
                    // The grant won the race: we hold the lock.
                    Err(_) => return Some(McsToken(node)),
                }
            }
            spin.relax();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic() {
        let l = McsLock::new();
        assert!(!l.is_locked());
        let t = l.lock();
        assert!(l.is_locked());
        l.unlock(t);
        assert!(!l.is_locked());
    }

    #[test]
    fn try_lock_contended() {
        let l = McsLock::new();
        let t = l.lock();
        assert!(l.try_lock().is_none());
        l.unlock(t);
        let t2 = l.try_lock().expect("now free");
        l.unlock(t2);
    }

    #[test]
    fn nested_distinct_locks() {
        // A thread holding several MCS locks at once needs several
        // nodes; the freelist must supply them.
        let a = McsLock::new();
        let b = McsLock::new();
        let c = McsLock::new();
        let ta = a.lock();
        let tb = b.lock();
        let tc = c.lock();
        assert!(a.is_locked() && b.is_locked() && c.is_locked());
        c.unlock(tc);
        b.unlock(tb);
        a.unlock(ta);
        assert!(!a.is_locked() && !b.is_locked() && !c.is_locked());
    }

    #[test]
    fn fifo_handover_order() {
        // Serialize arrivals, verify grant order matches.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let l = Arc::new(McsLock::new());
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let arrivals = Arc::new(AtomicUsize::new(0));

        let t0 = l.lock();
        let mut handles = vec![];
        for i in 0..4 {
            let l = l.clone();
            let order = order.clone();
            let arr = arrivals.clone();
            handles.push(std::thread::spawn(move || {
                while arr.load(Ordering::Acquire) != i {
                    std::thread::yield_now();
                }
                // Begin enqueue, then signal the next arriver. We
                // cannot split McsLock::lock, so signal *before*
                // locking and rely on a short settle delay to order
                // the swaps.
                arr.fetch_add(1, Ordering::Release);
                let t = l.lock();
                order.lock().unwrap().push(i);
                l.unlock(t);
            }));
            // Give each spawned thread time to reach the tail swap
            // before the next one starts.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        while arrivals.load(Ordering::Acquire) != 4 {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        l.unlock(t0);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn node_recycling_bounded() {
        // Repeated lock/unlock on one thread must reuse one node.
        let l = McsLock::new();
        for _ in 0..10_000 {
            let t = l.lock();
            l.unlock(t);
        }
        FREELIST.with(|f| {
            assert!(f.borrow().len() <= 4, "freelist grew unexpectedly");
        });
    }
}
