//! Proportional-execution lock — the paper's "SHFL-PB10" baseline.
//!
//! The paper adapts ShflLock's NUMA-local policy to AMP by splitting
//! big and little competitors into two queues and using "a simple
//! counter to allow exactly 1 little core to lock after every N big
//! cores" (§4, Evaluation Setup). This module implements exactly that
//! admission discipline: two FIFO waiter queues (one per core class)
//! plus a grant counter, under a tiny internal spinlock that is held
//! only for queue pushes/pops.
//!
//! Any static proportion is one point on the latency/throughput
//! trade-off curve of Figure 5; the harness sweeps `N` to regenerate
//! that figure.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use asl_runtime::registry::is_big_core;

use crate::RawLock;

/// Internal scheduler state, guarded by `guard`.
struct State {
    /// Mutual-exclusion bit for the *outer* lock.
    locked: bool,
    /// Big grants since the last little grant.
    bigs_since_little: u32,
    /// FIFO of spinning big-core waiters (grant flags).
    big: VecDeque<*const AtomicU32>,
    /// FIFO of spinning little-core waiters.
    little: VecDeque<*const AtomicU32>,
}

// SAFETY: the raw pointers reference stack slots of threads that are
// guaranteed to be blocked (spinning on that very flag) until granted.
unsafe impl Send for State {}

/// Proportional two-queue lock (1 little grant per `n` big grants).
pub struct ProportionalLock {
    guard: AtomicBool,
    locked_mirror: AtomicBool,
    state: std::cell::UnsafeCell<State>,
    n: u32,
}

unsafe impl Send for ProportionalLock {}
unsafe impl Sync for ProportionalLock {}

impl ProportionalLock {
    /// Create with proportion `n`: big cores get `n` grants for every
    /// little-core grant while both classes are queued. `n = 0` means
    /// little cores always have priority when waiting.
    pub fn new(n: u32) -> Self {
        ProportionalLock {
            guard: AtomicBool::new(false),
            locked_mirror: AtomicBool::new(false),
            state: std::cell::UnsafeCell::new(State {
                locked: false,
                bigs_since_little: 0,
                big: VecDeque::new(),
                little: VecDeque::new(),
            }),
            n,
        }
    }

    /// The configured proportion.
    pub fn proportion(&self) -> u32 {
        self.n
    }

    #[inline]
    fn with_state<R>(&self, f: impl FnOnce(&mut State) -> R) -> R {
        let mut spin = asl_runtime::relax::Spin::new();
        while self.guard.swap(true, Ordering::Acquire) {
            while self.guard.load(Ordering::Relaxed) {
                spin.relax();
            }
        }
        // SAFETY: `guard` provides mutual exclusion over `state`.
        let r = f(unsafe { &mut *self.state.get() });
        self.guard.store(false, Ordering::Release);
        r
    }
}

impl RawLock for ProportionalLock {
    type Token = ();

    fn lock(&self) {
        let flag = AtomicU32::new(0);
        let big = is_big_core();
        let acquired = self.with_state(|st| {
            if !st.locked {
                st.locked = true;
                true
            } else {
                if big {
                    st.big.push_back(&flag as *const AtomicU32);
                } else {
                    st.little.push_back(&flag as *const AtomicU32);
                }
                false
            }
        });
        if acquired {
            self.locked_mirror.store(true, Ordering::Relaxed);
            return;
        }
        let mut spin = asl_runtime::relax::Spin::new();
        while flag.load(Ordering::Acquire) == 0 {
            spin.relax();
        }
        // Handover kept `locked == true`; mirror already true.
    }

    fn try_lock(&self) -> Option<()> {
        let got = self.with_state(|st| {
            if !st.locked {
                st.locked = true;
                true
            } else {
                false
            }
        });
        if got {
            self.locked_mirror.store(true, Ordering::Relaxed);
            Some(())
        } else {
            None
        }
    }

    fn unlock(&self, _t: ()) {
        let grant = self.with_state(|st| {
            // Pick the next class: little is due after n big grants
            // (or when no big waits); otherwise big first.
            let little_due = st.bigs_since_little >= self.n;

            if little_due && !st.little.is_empty() {
                st.bigs_since_little = 0;
                st.little.pop_front()
            } else if !st.big.is_empty() {
                st.bigs_since_little += 1;
                st.big.pop_front()
            } else if !st.little.is_empty() {
                st.bigs_since_little = 0;
                st.little.pop_front()
            } else {
                st.locked = false;
                None
            }
        });
        match grant {
            Some(p) => {
                // SAFETY: the waiter spins on this flag until we set it.
                unsafe { (*p).store(1, Ordering::Release) };
            }
            None => self.locked_mirror.store(false, Ordering::Relaxed),
        }
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.locked_mirror.load(Ordering::Relaxed)
    }

    const NAME: &'static str = "shfl-pb";
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_runtime::topology::Topology;
    use asl_runtime::CoreKind;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn basic() {
        let l = ProportionalLock::new(10);
        assert!(!l.is_locked());
        l.lock();
        assert!(l.is_locked());
        assert!(l.try_lock().is_none());
        l.unlock(());
        assert!(!l.is_locked());
    }

    #[test]
    fn proportion_accessor() {
        assert_eq!(ProportionalLock::new(7).proportion(), 7);
    }

    #[test]
    fn grants_follow_proportion_under_saturation() {
        // Equal-speed classes so the admission policy, not core speed,
        // determines the share. With n=4 and both classes saturating,
        // big should get ~4x the grants of little.
        let topo = Topology::custom(2, 2, 1.0);
        let lock = Arc::new(ProportionalLock::new(4));
        let big_ops = Arc::new(AtomicU64::new(0));
        let little_ops = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let s2 = stop.clone();
        let stopper = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(200));
            s2.store(true, Ordering::Relaxed);
        });
        {
            let lock = lock.clone();
            let big_ops = big_ops.clone();
            let little_ops = little_ops.clone();
            asl_runtime::spawn::run_on_topology_with_stop(&topo, 4, false, stop, move |ctx| {
                let ctr = if ctx.assignment.kind == CoreKind::Big {
                    &big_ops
                } else {
                    &little_ops
                };
                while !ctx.stopped() {
                    lock.lock();
                    asl_runtime::work::execute_raw_units(500);
                    lock.unlock(());
                    ctr.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        stopper.join().unwrap();
        let b = big_ops.load(Ordering::Relaxed) as f64;
        let l = little_ops.load(Ordering::Relaxed) as f64;
        assert!(
            b > 0.0 && l > 0.0,
            "both classes must progress (no starvation)"
        );
        let ratio = b / l;
        assert!(
            ratio > 2.0 && ratio < 8.0,
            "expected ~4x big share, got {ratio:.2} (big={b} little={l})"
        );
    }

    #[test]
    fn no_starvation_with_zero_proportion() {
        // n = 0: littles always due; bigs must still progress when
        // the little queue empties between grants.
        let l = Arc::new(ProportionalLock::new(0));
        let mut handles = vec![];
        for _ in 0..4 {
            let l = l.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    l.lock();
                    l.unlock(());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
