//! Blocking locks for the over-subscription experiments (Bench-6).
//!
//! * [`PthreadMutex`] — the glibc-style 3-state spin-then-futex mutex
//!   (`0` unlocked, `1` locked, `2` locked+contended). Unfair,
//!   wake-one; the paper's `pthread_mutex_lock` stand-in.
//! * [`McsStpLock`] — MCS with spin-then-park waiters. The paper
//!   measures it (as "MCS-STP") to show why FIFO handover plus
//!   parking collapses under over-subscription: every handover eats a
//!   wake-up latency on the critical path.

use std::cell::UnsafeCell;
use std::ptr::{self, NonNull};
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};
use std::thread::Thread;

use crate::futex::{futex_wait, futex_wake};
use crate::{FifoLock, RawLock};

/// glibc-style spin-then-futex mutex.
pub struct PthreadMutex {
    /// 0 = unlocked, 1 = locked, 2 = locked with (possible) waiters.
    state: AtomicU32,
    spin_tries: u32,
}

impl PthreadMutex {
    /// Default spin budget (100 attempts) before sleeping, the same
    /// order as glibc's adaptive mutex.
    pub fn new() -> Self {
        Self::with_spin(100)
    }

    /// Custom pre-sleep spin budget.
    pub fn with_spin(spin_tries: u32) -> Self {
        PthreadMutex {
            state: AtomicU32::new(0),
            spin_tries,
        }
    }
}

impl Default for PthreadMutex {
    fn default() -> Self {
        Self::new()
    }
}

impl RawLock for PthreadMutex {
    type Token = ();

    #[inline]
    fn lock(&self) {
        if self
            .state
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        // Brief optimistic spinning: the holder may release soon.
        for _ in 0..self.spin_tries {
            std::hint::spin_loop();
            if self.state.load(Ordering::Relaxed) == 0
                && self
                    .state
                    .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
        }
        // Slow path: advertise contention, sleep until woken.
        while self.state.swap(2, Ordering::Acquire) != 0 {
            futex_wait(&self.state, 2);
        }
    }

    #[inline]
    fn try_lock(&self) -> Option<()> {
        self.state
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .ok()
            .map(|_| ())
    }

    #[inline]
    fn unlock(&self, _t: ()) {
        if self.state.swap(0, Ordering::Release) == 2 {
            futex_wake(&self.state, 1);
        }
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.state.load(Ordering::Relaxed) != 0
    }

    const NAME: &'static str = "pthread";
}

// ---------------------------------------------------------------------------

const STP_WAITING: u32 = 1;
const STP_GRANTED: u32 = 0;
const STP_PARKED: u32 = 2;

/// MCS queue node with a parking slot.
#[repr(align(64))]
pub struct StpNode {
    state: AtomicU32,
    next: AtomicPtr<StpNode>,
    thread: UnsafeCell<Option<Thread>>,
}

unsafe impl Sync for StpNode {}

impl StpNode {
    fn new() -> Self {
        StpNode {
            state: AtomicU32::new(STP_GRANTED),
            next: AtomicPtr::new(ptr::null_mut()),
            thread: UnsafeCell::new(None),
        }
    }
}

thread_local! {
    static STP_FREELIST: std::cell::RefCell<Vec<NonNull<StpNode>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

fn take_node() -> NonNull<StpNode> {
    STP_FREELIST
        .with(|f| f.borrow_mut().pop())
        .unwrap_or_else(|| NonNull::from(Box::leak(Box::new(StpNode::new()))))
}

fn put_node(node: NonNull<StpNode>) {
    STP_FREELIST.with(|f| f.borrow_mut().push(node));
}

/// Token proving acquisition of an [`McsStpLock`].
pub struct StpToken(NonNull<StpNode>);

impl StpToken {
    /// Encode as a raw word (for the object-safe lock facade).
    #[inline]
    pub fn into_raw(self) -> usize {
        self.0.as_ptr() as usize
    }

    /// Rebuild from a word produced by [`StpToken::into_raw`].
    ///
    /// # Safety
    /// `raw` must come from `into_raw` on an unreleased token of the
    /// same lock.
    #[inline]
    pub unsafe fn from_raw(raw: usize) -> Self {
        StpToken(NonNull::new_unchecked(raw as *mut StpNode))
    }
}

impl crate::plain::TokenWords for StpToken {
    #[inline]
    fn into_words(self) -> (usize, usize) {
        (self.into_raw(), 0)
    }
    #[inline]
    unsafe fn from_words(a: usize, _b: usize) -> Self {
        Self::from_raw(a)
    }
}

/// Spin-then-park MCS lock ("MCS-STP" in the paper's Fig. 8h).
pub struct McsStpLock {
    tail: AtomicPtr<StpNode>,
    spin_iters: u32,
}

impl McsStpLock {
    /// Default pre-park spin budget.
    pub fn new() -> Self {
        Self::with_spin(1_000)
    }

    /// Custom pre-park spin budget (iterations).
    pub fn with_spin(spin_iters: u32) -> Self {
        McsStpLock {
            tail: AtomicPtr::new(ptr::null_mut()),
            spin_iters,
        }
    }
}

impl Default for McsStpLock {
    fn default() -> Self {
        Self::new()
    }
}

unsafe impl Send for McsStpLock {}
unsafe impl Sync for McsStpLock {}

impl RawLock for McsStpLock {
    type Token = StpToken;

    fn lock(&self) -> StpToken {
        let node = take_node();
        unsafe {
            node.as_ref().state.store(STP_WAITING, Ordering::Relaxed);
            node.as_ref().next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        let pred = self.tail.swap(node.as_ptr(), Ordering::AcqRel);
        if !pred.is_null() {
            unsafe {
                (*pred).next.store(node.as_ptr(), Ordering::Release);
                // Spin briefly...
                for _ in 0..self.spin_iters {
                    if node.as_ref().state.load(Ordering::Acquire) == STP_GRANTED {
                        return StpToken(node);
                    }
                    std::hint::spin_loop();
                }
                // ...then park. Publish the thread handle first, then
                // flip WAITING -> PARKED; the granter observes PARKED
                // only after the handle is visible (release CAS).
                *node.as_ref().thread.get() = Some(std::thread::current());
                if node
                    .as_ref()
                    .state
                    .compare_exchange(STP_WAITING, STP_PARKED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    while node.as_ref().state.load(Ordering::Acquire) != STP_GRANTED {
                        // OS path: std park (spurious returns fine).
                        // Simulation substrate: a charged virtual wait
                        // — the granter's unpark is then a no-op.
                        asl_runtime::substrate::park_or(std::thread::park);
                    }
                }
                // Granted (either via CAS failure = already granted,
                // or after parking). Clear the handle for reuse.
                *node.as_ref().thread.get() = None;
            }
        }
        StpToken(node)
    }

    fn try_lock(&self) -> Option<StpToken> {
        if !self.tail.load(Ordering::Relaxed).is_null() {
            return None;
        }
        let node = take_node();
        unsafe {
            node.as_ref().state.store(STP_WAITING, Ordering::Relaxed);
            node.as_ref().next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        match self.tail.compare_exchange(
            ptr::null_mut(),
            node.as_ptr(),
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => Some(StpToken(node)),
            Err(_) => {
                put_node(node);
                None
            }
        }
    }

    fn unlock(&self, token: StpToken) {
        let node = token.0;
        unsafe {
            let mut next = node.as_ref().next.load(Ordering::Acquire);
            if next.is_null() {
                if self
                    .tail
                    .compare_exchange(
                        node.as_ptr(),
                        ptr::null_mut(),
                        Ordering::Release,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    put_node(node);
                    return;
                }
                let mut spin = asl_runtime::relax::Spin::new();
                loop {
                    next = node.as_ref().next.load(Ordering::Acquire);
                    if !next.is_null() {
                        break;
                    }
                    spin.relax();
                }
            }
            // Grant. If the successor already parked, its thread
            // handle must be cloned *before* GRANTED becomes visible:
            // `park()` may return spuriously, so the instant the
            // waiter can observe GRANTED it may exit, recycle the
            // node, and repurpose the handle slot.
            let state = &(*next).state;
            if state
                .compare_exchange(
                    STP_WAITING,
                    STP_GRANTED,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                // PARKED (the only other reachable state): the handle
                // is published and stays stable until we grant.
                let t = (*(*next).thread.get())
                    .clone()
                    .expect("parked waiter must have published its thread");
                state.store(STP_GRANTED, Ordering::Release);
                t.unpark();
            }
            put_node(node);
        }
    }

    fn is_locked(&self) -> bool {
        !self.tail.load(Ordering::Relaxed).is_null()
    }

    const NAME: &'static str = "mcs-stp";
}

impl FifoLock for McsStpLock {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pthread_basic() {
        let l = PthreadMutex::new();
        assert!(!l.is_locked());
        l.lock();
        assert!(l.is_locked());
        assert!(l.try_lock().is_none());
        l.unlock(());
        assert!(!l.is_locked());
    }

    #[test]
    fn pthread_contended_wakeups() {
        let l = Arc::new(PthreadMutex::with_spin(0)); // force futex path
        let mut handles = vec![];
        for _ in 0..8 {
            let l = l.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    l.lock();
                    std::hint::black_box(());
                    l.unlock(());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(!l.is_locked());
    }

    #[test]
    fn stp_basic() {
        let l = McsStpLock::new();
        let t = l.lock();
        assert!(l.is_locked());
        l.unlock(t);
        assert!(!l.is_locked());
    }

    #[test]
    fn stp_forced_parking() {
        // Zero spin budget forces every waiter through park/unpark.
        let l = Arc::new(McsStpLock::with_spin(0));
        let mut handles = vec![];
        for _ in 0..8 {
            let l = l.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..3_000 {
                    let t = l.lock();
                    l.unlock(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(!l.is_locked());
    }

    #[test]
    fn stp_try_lock() {
        let l = McsStpLock::new();
        let t = l.try_lock().expect("free");
        assert!(l.try_lock().is_none());
        l.unlock(t);
    }
}
