//! Ticket lock: the simplest FIFO spinlock.
//!
//! Take a ticket, spin until the now-serving counter reaches it.
//! Strict FIFO handover, so on AMP it exhibits the same throughput
//! collapse as MCS (Fig. 8a measures it explicitly).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{FifoLock, RawLock};

/// FIFO ticket spinlock.
pub struct TicketLock {
    next: AtomicU64,
    serving: AtomicU64,
}

impl TicketLock {
    /// New unlocked ticket lock.
    pub fn new() -> Self {
        TicketLock {
            next: AtomicU64::new(0),
            serving: AtomicU64::new(0),
        }
    }

    /// Number of threads currently holding or waiting.
    pub fn queue_depth(&self) -> u64 {
        let next = self.next.load(Ordering::Relaxed);
        let serving = self.serving.load(Ordering::Relaxed);
        next.saturating_sub(serving)
    }
}

impl Default for TicketLock {
    fn default() -> Self {
        Self::new()
    }
}

impl RawLock for TicketLock {
    type Token = ();

    #[inline]
    fn lock(&self) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        // Uncontended fast path: one RMW + one load, returning before
        // any spin-state setup (Spin::new reads the machine-shape
        // cache, which is pure overhead when the ticket is served
        // immediately).
        if self.serving.load(Ordering::Acquire) == ticket {
            return;
        }
        let mut spin = asl_runtime::relax::Spin::new();
        while self.serving.load(Ordering::Acquire) != ticket {
            spin.relax();
        }
    }

    #[inline]
    fn try_lock(&self) -> Option<()> {
        let serving = self.serving.load(Ordering::Relaxed);
        // Only take a ticket if it would be served immediately.
        if self
            .next
            .compare_exchange(serving, serving + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(())
        } else {
            None
        }
    }

    #[inline]
    fn unlock(&self, _t: ()) {
        self.serving.fetch_add(1, Ordering::Release);
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.queue_depth() > 0
    }

    const NAME: &'static str = "ticket";
}

impl FifoLock for TicketLock {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn basic() {
        let l = TicketLock::new();
        assert!(!l.is_locked());
        l.lock();
        assert!(l.is_locked());
        assert_eq!(l.queue_depth(), 1);
        l.unlock(());
        assert!(!l.is_locked());
    }

    #[test]
    fn try_lock_semantics() {
        let l = TicketLock::new();
        l.try_lock().expect("free lock");
        assert!(l.try_lock().is_none());
        l.unlock(());
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn fifo_order_observed() {
        // Thread 0 takes the lock, threads 1..4 queue in a known
        // order (serialized by a barrier chain); they must be granted
        // in that same order.
        let l = Arc::new(TicketLock::new());
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let enqueued = Arc::new(AtomicUsize::new(0));

        l.lock();
        let mut handles = vec![];
        for i in 0..4 {
            let l = l.clone();
            let order = order.clone();
            let enq = enqueued.clone();
            handles.push(std::thread::spawn(move || {
                // Wait until it is my turn to enqueue (ensures a
                // deterministic arrival order).
                while enq.load(Ordering::Acquire) != i {
                    std::thread::yield_now();
                }
                let ticket = l.next.fetch_add(1, Ordering::Relaxed);
                enq.fetch_add(1, Ordering::Release);
                while l.serving.load(Ordering::Acquire) != ticket {
                    std::thread::yield_now();
                }
                order.lock().unwrap().push(i);
                l.unlock(());
            }));
        }
        // Wait for all four to be queued, then release.
        while enqueued.load(Ordering::Acquire) != 4 {
            std::thread::yield_now();
        }
        l.unlock(());
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn queue_depth_counts_waiters() {
        let l = Arc::new(TicketLock::new());
        l.lock();
        let l2 = l.clone();
        let h = std::thread::spawn(move || {
            l2.lock();
            l2.unlock(());
        });
        // Wait for the second thread to take a ticket.
        while l.queue_depth() < 2 {
            std::thread::yield_now();
        }
        assert_eq!(l.queue_depth(), 2);
        l.unlock(());
        h.join().unwrap();
        assert_eq!(l.queue_depth(), 0);
    }
}
