//! Ticket lock: the simplest FIFO spinlock.
//!
//! Take a ticket, spin until the now-serving counter reaches it.
//! Strict FIFO handover, so on AMP it exhibits the same throughput
//! collapse as MCS (Fig. 8a measures it explicitly).
//!
//! ## Timed back-out
//!
//! A timed waiter ([`crate::timed::RawTimedLock`]) that expires
//! first tries to *retract* its ticket (CAS `next` back down — only
//! possible for the tail ticket); failing that it deeds the ticket to
//! a small abandon list that the release path drains: whenever
//! `serving` lands on an abandoned ticket, the releaser advances it
//! again. This is the same drain-target idea as
//! [`crate::rw_ticket`]'s writer drain — the counter the grant chain
//! waits on is pushed *past* entries nobody will claim.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{FifoLock, RawLock};

/// FIFO ticket spinlock.
pub struct TicketLock {
    next: AtomicU64,
    serving: AtomicU64,
    /// Exact count of deeded (abandoned, not yet drained) tickets —
    /// the release fast path's one-load gate.
    abandoned_len: AtomicU64,
    /// Protects `abandoned`. A TAS lock, not a ticket lock: it is
    /// only ever held for a few loads/stores, and using the same
    /// family would recurse.
    abandon_lock: crate::tas::TasLock,
    /// Deeded tickets awaiting drain. Tiny (bounded by concurrent
    /// timed waiters), scanned linearly.
    abandoned: UnsafeCell<Vec<u64>>,
}

// SAFETY: `abandoned` is only touched while `abandon_lock` is held.
unsafe impl Send for TicketLock {}
unsafe impl Sync for TicketLock {}

impl TicketLock {
    /// New unlocked ticket lock.
    pub fn new() -> Self {
        TicketLock {
            next: AtomicU64::new(0),
            serving: AtomicU64::new(0),
            abandoned_len: AtomicU64::new(0),
            abandon_lock: crate::tas::TasLock::new(),
            abandoned: UnsafeCell::new(Vec::new()),
        }
    }

    /// Number of threads currently holding or waiting (abandoned
    /// tickets count until drained — transiently, since every release
    /// drains).
    pub fn queue_depth(&self) -> u64 {
        let next = self.next.load(Ordering::Relaxed);
        let serving = self.serving.load(Ordering::Relaxed);
        next.saturating_sub(serving)
    }

    /// Advance `serving` past consecutively abandoned tickets. Called
    /// by the release path whenever the abandon list is non-empty;
    /// granters pop under the same lock timed waiters deed under, so
    /// `serving == T` with `T` undrained means `T`'s owner abandoned
    /// and the chain must move on.
    #[cold]
    fn drain_abandoned(&self) {
        self.abandon_lock.lock();
        loop {
            let s = self.serving.load(Ordering::Relaxed);
            let list = unsafe { &mut *self.abandoned.get() };
            match list.iter().position(|&t| t == s) {
                Some(pos) => {
                    list.swap_remove(pos);
                    self.abandoned_len.fetch_sub(1, Ordering::Relaxed);
                    self.serving.fetch_add(1, Ordering::Release);
                }
                None => break,
            }
        }
        self.abandon_lock.unlock(());
    }
}

impl Default for TicketLock {
    fn default() -> Self {
        Self::new()
    }
}

impl RawLock for TicketLock {
    type Token = ();

    #[inline]
    fn lock(&self) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        // Uncontended fast path: one RMW + one load, returning before
        // any spin-state setup (Spin::new reads the machine-shape
        // cache, which is pure overhead when the ticket is served
        // immediately).
        if self.serving.load(Ordering::Acquire) == ticket {
            return;
        }
        let mut spin = asl_runtime::relax::Spin::new();
        while self.serving.load(Ordering::Acquire) != ticket {
            spin.relax();
        }
    }

    #[inline]
    fn try_lock(&self) -> Option<()> {
        let serving = self.serving.load(Ordering::Relaxed);
        // Only take a ticket if it would be served immediately.
        if self
            .next
            .compare_exchange(serving, serving + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(())
        } else {
            None
        }
    }

    #[inline]
    fn unlock(&self, _t: ()) {
        // SeqCst: Dekker pair with the timed back-out. The abandoner
        // publishes its ticket (list push + `abandoned_len` add),
        // then re-reads `serving`; we advance `serving`, then read
        // `abandoned_len`. At least one side must observe the other,
        // or a grant could land on a deeded ticket nobody drains.
        self.serving.fetch_add(1, Ordering::SeqCst);
        if self.abandoned_len.load(Ordering::SeqCst) != 0 {
            self.drain_abandoned();
        }
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.queue_depth() > 0
    }

    const NAME: &'static str = "ticket";
}

impl FifoLock for TicketLock {}

impl crate::timed::RawTimedLock for TicketLock {
    /// Back out of a ticket wait (module docs): retract the tail
    /// ticket if nobody queued behind us, else deed it to the abandon
    /// list. Both paths leave the grant chain able to reach every
    /// live waiter.
    fn try_lock_until(&self, deadline_ns: u64) -> Option<()> {
        // Fast path: a free lock is a plain immediate acquisition.
        if self.try_lock().is_some() {
            return Some(());
        }
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        if self.serving.load(Ordering::Acquire) == ticket {
            return Some(());
        }
        let mut spin = asl_runtime::relax::Spin::new();
        loop {
            if self.serving.load(Ordering::Acquire) == ticket {
                return Some(());
            }
            if asl_runtime::clock::coarse_now_ns() >= deadline_ns {
                break;
            }
            spin.relax();
        }
        // Expired. Retract if we are still the tail: `next` back from
        // `ticket + 1` to `ticket` unissues our ticket entirely.
        if self
            .next
            .compare_exchange(
                ticket.wrapping_add(1),
                ticket,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            return None;
        }
        // Someone queued behind us: the ticket must be deeded so the
        // chain can drain past it. Grants pop under `abandon_lock`
        // (see `drain_abandoned`), so the `serving == ticket` checks
        // below cannot race a concurrent drain of our own ticket.
        self.abandon_lock.lock();
        if self.serving.load(Ordering::Acquire) == ticket {
            // The grant landed while we were expiring: we own the
            // lock (a late win, allowed by the timed contract).
            self.abandon_lock.unlock(());
            return Some(());
        }
        unsafe { (*self.abandoned.get()).push(ticket) };
        self.abandoned_len.fetch_add(1, Ordering::SeqCst);
        // Dekker pair with `unlock` (see there): re-read `serving`
        // after publishing. If the grant landed in between and the
        // releaser missed our publication, nobody would drain us —
        // so take the lock instead.
        if self.serving.load(Ordering::SeqCst) == ticket {
            let list = unsafe { &mut *self.abandoned.get() };
            let pos = list.iter().position(|&t| t == ticket).expect("own ticket");
            list.swap_remove(pos);
            self.abandoned_len.fetch_sub(1, Ordering::Relaxed);
            self.abandon_lock.unlock(());
            return Some(());
        }
        self.abandon_lock.unlock(());
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn basic() {
        let l = TicketLock::new();
        assert!(!l.is_locked());
        l.lock();
        assert!(l.is_locked());
        assert_eq!(l.queue_depth(), 1);
        l.unlock(());
        assert!(!l.is_locked());
    }

    #[test]
    fn try_lock_semantics() {
        let l = TicketLock::new();
        l.try_lock().expect("free lock");
        assert!(l.try_lock().is_none());
        l.unlock(());
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn fifo_order_observed() {
        // Thread 0 takes the lock, threads 1..4 queue in a known
        // order (serialized by a barrier chain); they must be granted
        // in that same order.
        let l = Arc::new(TicketLock::new());
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let enqueued = Arc::new(AtomicUsize::new(0));

        l.lock();
        let mut handles = vec![];
        for i in 0..4 {
            let l = l.clone();
            let order = order.clone();
            let enq = enqueued.clone();
            handles.push(std::thread::spawn(move || {
                // Wait until it is my turn to enqueue (ensures a
                // deterministic arrival order).
                while enq.load(Ordering::Acquire) != i {
                    std::thread::yield_now();
                }
                let ticket = l.next.fetch_add(1, Ordering::Relaxed);
                enq.fetch_add(1, Ordering::Release);
                while l.serving.load(Ordering::Acquire) != ticket {
                    std::thread::yield_now();
                }
                order.lock().unwrap().push(i);
                l.unlock(());
            }));
        }
        // Wait for all four to be queued, then release.
        while enqueued.load(Ordering::Acquire) != 4 {
            std::thread::yield_now();
        }
        l.unlock(());
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn queue_depth_counts_waiters() {
        let l = Arc::new(TicketLock::new());
        l.lock();
        let l2 = l.clone();
        let h = std::thread::spawn(move || {
            l2.lock();
            l2.unlock(());
        });
        // Wait for the second thread to take a ticket.
        while l.queue_depth() < 2 {
            std::thread::yield_now();
        }
        assert_eq!(l.queue_depth(), 2);
        l.unlock(());
        h.join().unwrap();
        assert_eq!(l.queue_depth(), 0);
    }
}
