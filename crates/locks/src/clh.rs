//! CLH queue lock (Craig; Landin & Hagersten).
//!
//! An alternative FIFO substrate for the reorderable layer (used in
//! the `ablate_fifo` bench). Waiters spin on their *predecessor's*
//! node; nodes are recycled through the classic CLH trick — an
//! unlocking thread adopts its predecessor's node for future use.

use std::cell::RefCell;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};

use crate::{FifoLock, RawLock};

const HELD: u32 = 1;
const RELEASED: u32 = 0;

/// A CLH queue node; cache-line aligned to avoid false sharing of
/// spin targets.
#[repr(align(64))]
pub struct ClhNode {
    state: AtomicU32,
}

impl ClhNode {
    fn new(state: u32) -> Self {
        ClhNode {
            state: AtomicU32::new(state),
        }
    }
}

thread_local! {
    static FREELIST: RefCell<Vec<NonNull<ClhNode>>> = const { RefCell::new(Vec::new()) };
}

fn take_node() -> NonNull<ClhNode> {
    FREELIST
        .with(|f| f.borrow_mut().pop())
        .unwrap_or_else(|| NonNull::from(Box::leak(Box::new(ClhNode::new(RELEASED)))))
}

fn put_node(node: NonNull<ClhNode>) {
    FREELIST.with(|f| f.borrow_mut().push(node));
}

/// Token proving acquisition; carries (own node, predecessor node).
pub struct ClhToken {
    node: NonNull<ClhNode>,
    pred: NonNull<ClhNode>,
}

impl ClhToken {
    /// Encode as two raw words (for the object-safe lock facade).
    #[inline]
    pub fn into_raw(self) -> (usize, usize) {
        (self.node.as_ptr() as usize, self.pred.as_ptr() as usize)
    }

    /// Rebuild from words produced by [`ClhToken::into_raw`].
    ///
    /// # Safety
    /// The words must come from `into_raw` on an unreleased token of
    /// the same lock.
    #[inline]
    pub unsafe fn from_raw(node: usize, pred: usize) -> Self {
        ClhToken {
            node: NonNull::new_unchecked(node as *mut ClhNode),
            pred: NonNull::new_unchecked(pred as *mut ClhNode),
        }
    }
}

impl crate::plain::TokenWords for ClhToken {
    #[inline]
    fn into_words(self) -> (usize, usize) {
        self.into_raw()
    }
    #[inline]
    unsafe fn from_words(a: usize, b: usize) -> Self {
        Self::from_raw(a, b)
    }
}

/// The CLH queue lock.
pub struct ClhLock {
    tail: AtomicPtr<ClhNode>,
}

impl ClhLock {
    /// New unlocked CLH lock. Allocates the initial dummy node.
    pub fn new() -> Self {
        let dummy = Box::leak(Box::new(ClhNode::new(RELEASED)));
        ClhLock {
            tail: AtomicPtr::new(dummy),
        }
    }
}

impl Default for ClhLock {
    fn default() -> Self {
        Self::new()
    }
}

unsafe impl Send for ClhLock {}
unsafe impl Sync for ClhLock {}

impl RawLock for ClhLock {
    type Token = ClhToken;

    #[inline]
    fn lock(&self) -> ClhToken {
        let node = take_node();
        unsafe { node.as_ref().state.store(HELD, Ordering::Relaxed) };
        let pred = self.tail.swap(node.as_ptr(), Ordering::AcqRel);
        // SAFETY: `pred` stays alive until *we* recycle it at unlock.
        let pred = unsafe { NonNull::new_unchecked(pred) };
        let mut spin = asl_runtime::relax::Spin::new();
        unsafe {
            while pred.as_ref().state.load(Ordering::Acquire) == HELD {
                spin.relax();
            }
        }
        ClhToken { node, pred }
    }

    #[inline]
    fn try_lock(&self) -> Option<ClhToken> {
        let tail = self.tail.load(Ordering::Acquire);
        // SAFETY: tail is never null after construction.
        if unsafe { (*tail).state.load(Ordering::Acquire) } == HELD {
            return None;
        }
        let node = take_node();
        unsafe { node.as_ref().state.store(HELD, Ordering::Relaxed) };
        match self
            .tail
            .compare_exchange(tail, node.as_ptr(), Ordering::AcqRel, Ordering::Relaxed)
        {
            Ok(pred) => Some(ClhToken {
                node,
                pred: unsafe { NonNull::new_unchecked(pred) },
            }),
            Err(_) => {
                put_node(node);
                None
            }
        }
    }

    #[inline]
    fn unlock(&self, token: ClhToken) {
        unsafe {
            token.node.as_ref().state.store(RELEASED, Ordering::Release);
        }
        // Adopt the predecessor's node: no live reference to it
        // remains (we were the only thread spinning on it).
        put_node(token.pred);
    }

    #[inline]
    fn is_locked(&self) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        unsafe { (*tail).state.load(Ordering::Relaxed) == HELD }
    }

    const NAME: &'static str = "clh";
}

impl FifoLock for ClhLock {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic() {
        let l = ClhLock::new();
        assert!(!l.is_locked());
        let t = l.lock();
        assert!(l.is_locked());
        l.unlock(t);
        assert!(!l.is_locked());
    }

    #[test]
    fn try_lock() {
        let l = ClhLock::new();
        let t = l.lock();
        assert!(l.try_lock().is_none());
        l.unlock(t);
        let t = l.try_lock().expect("free");
        l.unlock(t);
    }

    #[test]
    fn reacquire_many_times() {
        let l = ClhLock::new();
        for _ in 0..50_000 {
            let t = l.lock();
            l.unlock(t);
        }
        assert!(!l.is_locked());
    }

    #[test]
    fn two_locks_interleaved() {
        let a = ClhLock::new();
        let b = ClhLock::new();
        let ta = a.lock();
        let tb = b.lock();
        a.unlock(ta);
        let ta2 = a.lock();
        b.unlock(tb);
        a.unlock(ta2);
    }

    #[test]
    fn contended_handover() {
        let l = Arc::new(ClhLock::new());
        let mut handles = vec![];
        for _ in 0..6 {
            let l = l.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..20_000 {
                    let t = l.lock();
                    l.unlock(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(!l.is_locked());
    }
}
