//! Lock-agnostic acquisition telemetry.
//!
//! LibASL's premise is that the right lock behaviour depends on
//! *observed* conditions, yet historically only the reorderable lock
//! kept counters — every other lock in the zoo was blind. This module
//! hoists observability into a first-class, substrate-independent
//! layer that every lock (and the contention-adaptive
//! [`crate::Adaptive`] lock built on it) shares:
//!
//! * [`TelemetryCell`] — a cache-padded bundle of relaxed counters:
//!   acquisitions, contended acquisitions, spin iterations, and
//!   (when sampling is enabled) cumulative hold and wait time in
//!   nanoseconds via `asl_runtime::clock`. Count recording is a
//!   single relaxed `fetch_add`; the clock is only read when
//!   [`TelemetryCell::set_sampling`] has turned timing on, so an
//!   instrumented lock with sampling off costs near zero.
//! * [`Instrumented`] — wraps any [`RawLock`] and records into a
//!   cell on every acquisition/release; [`InstrumentedRw`] is the
//!   reader-writer counterpart (separate read/write cells).
//! * [`InstrumentedPlain`] / [`InstrumentedPlainRw`] — the same
//!   wrapping for runtime-chosen locks (`Arc<dyn PlainLock>`), which
//!   is what the harness registry's `instrumented-<name>` specs and
//!   the `repro --profile` mode materialize.
//! * a process-wide profiling registry — [`set_profiling`] turns
//!   global collection on, [`maybe_instrument`] wraps a lock and
//!   files its cell under a label, and [`snapshots`] hands the
//!   harness every labelled [`TelemetrySnapshot`] for its per-lock
//!   stats tables.
//!
//! ## Cost model: zero when off, counts when recording, clocks when sampling
//!
//! Instrumentation has three gears, so wrapped locks can stay wrapped
//! in production:
//!
//! 1. **Off** (default): every `Instrumented*` hot path fast-exits on
//!    the [`recording`] gate *before any counter RMW* — the wrapper
//!    costs one relaxed global load, one relaxed per-cell load, and a
//!    predictable branch over the raw lock (single-digit ns).
//! 2. **Recording** ([`set_recording`], implied by [`set_profiling`]):
//!    acquisition/contention counts are recorded as relaxed
//!    `fetch_add`s — wait-free, no clock reads.
//! 3. **Sampling** ([`TelemetryCell::set_sampling`], enabled on
//!    registry cells while profiling is on): hold/wait timing is
//!    recorded too, which costs up to two monotonic-clock reads per
//!    acquisition. A cell with sampling on is armed even when the
//!    global gate is off (local intent wins).
//!
//! ```
//! use asl_locks::api::GuardedLock;
//! use asl_locks::telemetry::Instrumented;
//! use asl_locks::TasLock;
//!
//! // `sampled` arms this cell regardless of the global gate.
//! let lock = Instrumented::sampled(TasLock::new());
//! {
//!     let _held = lock.guard(); // records one uncontended acquisition
//! }
//! let snap = lock.telemetry().snapshot();
//! assert_eq!(snap.acquisitions, 1);
//! assert_eq!(snap.contended, 0);
//!
//! // An un-armed wrapper is a passthrough: no counters move.
//! let quiet = Instrumented::new(TasLock::new());
//! {
//!     let _held = quiet.guard();
//! }
//! assert_eq!(quiet.telemetry().snapshot().acquisitions, 0);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use asl_runtime::clock::now_ns;

use crate::plain::{PlainLock, PlainRwLock, PlainRwToken, PlainToken};
use crate::{RawLock, RawRwLock};

/// Cache-padded acquisition counters shared by every instrumented
/// lock.
///
/// All counters are relaxed atomics: recording is wait-free and
/// tearing-tolerant (snapshots are "consistent enough" for
/// reporting). Hold/wait time is only recorded while sampling is
/// enabled, because it costs two monotonic-clock reads per
/// acquisition.
///
/// Atomic-ordering audit: every counter here is a pure statistic —
/// no control flow, lock-word, or memory-safety decision reads one
/// (the sole reader is [`TelemetryCell::snapshot`], which tolerates
/// torn cross-counter views by design). `Relaxed` therefore suffices
/// on every site: per-location modification order still makes each
/// individual counter's `fetch_add`s exact, and the lock's own
/// acquire/release fences already order anything the *holder* writes.
/// The one stateful slot, `hold_start_ns`, is only written by the
/// lock holder between acquire and release, so the lock provides the
/// happens-before edge `Relaxed` does not.
#[repr(align(128))]
#[derive(Debug, Default)]
pub struct TelemetryCell {
    /// Successful acquisitions (lock + try_lock-success + write side
    /// of rw locks; read acquisitions on a read cell).
    acquisitions: AtomicU64,
    /// Acquisitions that observed the lock held (or queued) on entry.
    contended: AtomicU64,
    /// Spin-loop iterations reported by locks that self-report their
    /// waiting (e.g. [`crate::Adaptive`]).
    spin_iters: AtomicU64,
    /// Cumulative nanoseconds spent holding the lock (sampling only).
    hold_ns: AtomicU64,
    /// Cumulative nanoseconds spent waiting to acquire (sampling
    /// only).
    wait_ns: AtomicU64,
    /// Timestamp of the in-flight exclusive acquisition (valid only
    /// between a sampled acquire and its release; protected by the
    /// lock itself being held).
    hold_start_ns: AtomicU64,
    /// Consecutive contended acquisitions (zeroed by any uncontended
    /// one). Maintained by [`TelemetryCell::record_acquisition`] only
    /// — the split `record_contended`/`record_acquired` API leaves it
    /// untouched. This is the collapse-onset signal the GCR admission
    /// controller ([`crate::gcr`]) shrinks on.
    contended_streak: AtomicU64,
    /// Whether hold/wait timing is recorded.
    sampling: AtomicBool,
}

impl TelemetryCell {
    /// Fresh zeroed cell with sampling off.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh zeroed cell with sampling (hold/wait timing) on.
    pub fn sampled() -> Self {
        let c = Self::new();
        c.set_sampling(true);
        c
    }

    /// Turn hold/wait timing on or off (counts are always recorded).
    pub fn set_sampling(&self, on: bool) {
        self.sampling.store(on, Ordering::Relaxed);
    }

    /// Whether hold/wait timing is currently recorded.
    #[inline]
    pub fn sampling(&self) -> bool {
        self.sampling.load(Ordering::Relaxed)
    }

    /// Whether an instrumented wrapper should record into this cell
    /// at all: the process-wide [`recording`] gate, or this cell's
    /// own sampling flag (local intent wins over the global default).
    ///
    /// This is the zero-cost-when-off fast-exit — two relaxed loads
    /// and a branch, checked *before* any counter RMW or clock read.
    #[inline]
    pub fn armed(&self) -> bool {
        recording() || self.sampling()
    }

    /// Record one successful acquisition (`contended` = the lock was
    /// observed held or queued on entry). Also advances (or resets)
    /// the consecutive-contended streak.
    #[inline]
    pub fn record_acquisition(&self, contended: bool) {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if contended {
            self.contended.fetch_add(1, Ordering::Relaxed);
            self.contended_streak.fetch_add(1, Ordering::Relaxed);
        } else if self.contended_streak.load(Ordering::Relaxed) != 0 {
            self.contended_streak.store(0, Ordering::Relaxed);
        }
    }

    /// Consecutive contended acquisitions, as of now (reset by any
    /// uncontended acquisition recorded through
    /// [`TelemetryCell::record_acquisition`]).
    #[inline]
    pub fn contended_streak(&self) -> u64 {
        self.contended_streak.load(Ordering::Relaxed)
    }

    /// Record a contention *observation* before blocking (used by
    /// self-reporting locks so waiters are visible while they still
    /// wait; pair with [`TelemetryCell::record_acquired`]).
    #[inline]
    pub fn record_contended(&self) {
        self.contended.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a completed acquisition whose contention was already
    /// counted by [`TelemetryCell::record_contended`] (or that was
    /// uncontended).
    #[inline]
    pub fn record_acquired(&self) {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
    }

    /// Add spin-loop iterations observed while waiting.
    #[inline]
    pub fn add_spins(&self, n: u64) {
        if n > 0 {
            self.spin_iters.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add nanoseconds spent waiting to acquire.
    #[inline]
    pub fn add_wait_ns(&self, ns: u64) {
        self.wait_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Note the start of an exclusive hold (sampling only; call while
    /// holding the lock).
    #[inline]
    pub fn note_hold_start(&self) {
        if self.sampling() {
            self.hold_start_ns.store(now_ns().max(1), Ordering::Relaxed);
        }
    }

    /// Close the exclusive hold opened by
    /// [`TelemetryCell::note_hold_start`] (call before releasing).
    #[inline]
    pub fn note_hold_end(&self) {
        // Load-before-RMW: with sampling off there is no in-flight
        // hold, and the release path must not pay an unconditional
        // atomic swap just to find that out.
        if self.hold_start_ns.load(Ordering::Relaxed) == 0 {
            return;
        }
        let start = self.hold_start_ns.swap(0, Ordering::Relaxed);
        if start != 0 {
            self.hold_ns
                .fetch_add(now_ns().saturating_sub(start), Ordering::Relaxed);
        }
    }

    /// Timestamp ([`now_ns`] timeline) at which the in-flight hold
    /// began, or 0 when no hold is open (or sampling is off). The
    /// [`crate::watchdog::StallWatchdog`]'s signal: `now - start` is
    /// how long the current holder has been inside the critical
    /// section, readable from *outside* the lock without touching the
    /// accumulated `hold_ns` (which only advances on release —
    /// exactly the counter a stalled holder never reaches).
    #[inline]
    pub fn hold_started_ns(&self) -> u64 {
        self.hold_start_ns.load(Ordering::Relaxed)
    }

    /// Consistent-enough point-in-time view for reporting.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            spin_iters: self.spin_iters.load(Ordering::Relaxed),
            hold_ns: self.hold_ns.load(Ordering::Relaxed),
            wait_ns: self.wait_ns.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters (sampling mode is preserved).
    pub fn reset(&self) {
        self.acquisitions.store(0, Ordering::Relaxed);
        self.contended.store(0, Ordering::Relaxed);
        self.spin_iters.store(0, Ordering::Relaxed);
        self.hold_ns.store(0, Ordering::Relaxed);
        self.wait_ns.store(0, Ordering::Relaxed);
        self.hold_start_ns.store(0, Ordering::Relaxed);
        self.contended_streak.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time view of a [`TelemetryCell`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// Successful acquisitions recorded.
    pub acquisitions: u64,
    /// Acquisitions that observed the lock held on entry.
    pub contended: u64,
    /// Spin-loop iterations reported by self-reporting locks.
    pub spin_iters: u64,
    /// Cumulative hold time (ns; zero unless sampling was on).
    pub hold_ns: u64,
    /// Cumulative acquisition-wait time (ns; zero unless sampling was
    /// on).
    pub wait_ns: u64,
}

impl TelemetrySnapshot {
    /// Fraction of acquisitions that were contended, in `[0, 1]`.
    pub fn contention_ratio(&self) -> f64 {
        self.contended as f64 / self.acquisitions.max(1) as f64
    }

    /// Mean hold time per acquisition (ns; zero without sampling).
    pub fn avg_hold_ns(&self) -> f64 {
        self.hold_ns as f64 / self.acquisitions.max(1) as f64
    }

    /// Mean wait time per acquisition (ns; zero without sampling).
    pub fn avg_wait_ns(&self) -> f64 {
        self.wait_ns as f64 / self.acquisitions.max(1) as f64
    }

    /// Component-wise saturating difference: the activity *window*
    /// between an `earlier` snapshot and this one. Feedback loops
    /// (the GCR admission controller) tick on windows, not lifetime
    /// totals, so hold-time inflation in the last window is not
    /// averaged away by a long calm history.
    pub fn delta(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            acquisitions: self.acquisitions.saturating_sub(earlier.acquisitions),
            contended: self.contended.saturating_sub(earlier.contended),
            spin_iters: self.spin_iters.saturating_sub(earlier.spin_iters),
            hold_ns: self.hold_ns.saturating_sub(earlier.hold_ns),
            wait_ns: self.wait_ns.saturating_sub(earlier.wait_ns),
        }
    }

    /// Component-wise sum (aggregating several locks under one
    /// label).
    pub fn merged(&self, other: &TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            acquisitions: self.acquisitions + other.acquisitions,
            contended: self.contended + other.contended,
            spin_iters: self.spin_iters + other.spin_iters,
            hold_ns: self.hold_ns + other.hold_ns,
            wait_ns: self.wait_ns + other.wait_ns,
        }
    }
}

// ---------------------------------------------------------------------------
// Static wrappers: Instrumented<L> / InstrumentedRw<L>.
// ---------------------------------------------------------------------------

/// A [`RawLock`] that records acquisition telemetry.
///
/// The token passes through unchanged, so the wrapper composes with
/// every layer built on `RawLock` (guards, the object-safe facade,
/// the reorderable lock). Hold time uses a slot in the cell written
/// under the lock, so no extra token state is needed.
pub struct Instrumented<L: RawLock> {
    inner: L,
    cell: TelemetryCell,
}

impl<L: RawLock> Instrumented<L> {
    /// Wrap `inner` with a fresh telemetry cell (sampling off): the
    /// wrapper records counts only while the process-wide
    /// [`recording`] gate is on, and is a near-zero passthrough
    /// otherwise.
    pub fn new(inner: L) -> Self {
        Instrumented {
            inner,
            cell: TelemetryCell::new(),
        }
    }

    /// Wrap `inner` with hold/wait-time sampling enabled (the cell is
    /// armed regardless of the global [`recording`] gate).
    pub fn sampled(inner: L) -> Self {
        Instrumented {
            inner,
            cell: TelemetryCell::sampled(),
        }
    }

    /// The recorded telemetry.
    pub fn telemetry(&self) -> &TelemetryCell {
        &self.cell
    }

    /// The wrapped lock.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// The armed acquisition path: counters, and (when sampling)
    /// wait-time brackets around the inner acquire. Kept out of line
    /// — see `RawLock::lock` below.
    #[cold]
    #[inline(never)]
    fn lock_recorded(&self) -> L::Token {
        let contended = self.inner.is_locked();
        let sampling = self.cell.sampling();
        let t0 = if sampling && contended { now_ns() } else { 0 };
        let token = self.inner.lock();
        if t0 != 0 {
            self.cell.add_wait_ns(now_ns().saturating_sub(t0));
        }
        self.cell.record_acquisition(contended);
        self.cell.note_hold_start();
        token
    }
}

impl<L: RawLock + Default> Default for Instrumented<L> {
    fn default() -> Self {
        Self::new(L::default())
    }
}

impl<L: RawLock> RawLock for Instrumented<L> {
    type Token = L::Token;

    #[inline]
    fn lock(&self) -> L::Token {
        // Zero-cost-when-off: bail before any counter RMW (or even
        // the is_locked probe, which would touch the lock word). The
        // recording path lives out of line so its clock plumbing
        // can't bloat this function past the inliner's budget and
        // slow the off path down.
        if !self.cell.armed() {
            return self.inner.lock();
        }
        self.lock_recorded()
    }

    #[inline]
    fn try_lock(&self) -> Option<L::Token> {
        let token = self.inner.try_lock()?;
        if self.cell.armed() {
            self.cell.record_acquisition(false);
            self.cell.note_hold_start();
        }
        Some(token)
    }

    #[inline]
    fn unlock(&self, token: L::Token) {
        // Not gated on `armed`: note_hold_end is a single relaxed
        // load when no sampled hold is in flight, and checking the
        // slot unconditionally closes holds cleanly even if sampling
        // was toggled mid-hold.
        self.cell.note_hold_end();
        self.inner.unlock(token);
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.inner.is_locked()
    }

    const NAME: &'static str = "instrumented";
}

// Instrumentation does not change the grant order.
impl<L: crate::FifoLock> crate::FifoLock for Instrumented<L> {}

/// A [`RawRwLock`] that records acquisition telemetry, with separate
/// cells for the shared and exclusive sides.
///
/// Hold time is recorded for the exclusive side only (shared holds
/// overlap, so a single in-flight slot cannot represent them).
pub struct InstrumentedRw<L: RawRwLock> {
    inner: L,
    read: TelemetryCell,
    write: TelemetryCell,
}

impl<L: RawRwLock> InstrumentedRw<L> {
    /// Wrap `inner` with fresh read/write telemetry cells (armed only
    /// while the process-wide [`recording`] gate is on).
    pub fn new(inner: L) -> Self {
        InstrumentedRw {
            inner,
            read: TelemetryCell::new(),
            write: TelemetryCell::new(),
        }
    }

    /// Wrap `inner` with sampling enabled on both sides (cells armed
    /// regardless of the global [`recording`] gate).
    pub fn sampled(inner: L) -> Self {
        InstrumentedRw {
            inner,
            read: TelemetryCell::sampled(),
            write: TelemetryCell::sampled(),
        }
    }

    /// Telemetry of the shared (read) side.
    pub fn read_telemetry(&self) -> &TelemetryCell {
        &self.read
    }

    /// Telemetry of the exclusive (write) side.
    pub fn write_telemetry(&self) -> &TelemetryCell {
        &self.write
    }

    /// The wrapped rwlock.
    pub fn inner(&self) -> &L {
        &self.inner
    }
}

impl<L: RawRwLock + Default> Default for InstrumentedRw<L> {
    fn default() -> Self {
        Self::new(L::default())
    }
}

impl<L: RawRwLock> RawRwLock for InstrumentedRw<L> {
    type ReadToken = L::ReadToken;
    type WriteToken = L::WriteToken;

    #[inline]
    fn read(&self) -> L::ReadToken {
        if !self.read.armed() {
            return self.inner.read();
        }
        let contended = self.inner.is_write_locked();
        let sampling = self.read.sampling();
        let t0 = if sampling && contended { now_ns() } else { 0 };
        let token = self.inner.read();
        if t0 != 0 {
            self.read.add_wait_ns(now_ns().saturating_sub(t0));
        }
        self.read.record_acquisition(contended);
        token
    }

    #[inline]
    fn try_read(&self) -> Option<L::ReadToken> {
        let token = self.inner.try_read()?;
        if self.read.armed() {
            self.read.record_acquisition(false);
        }
        Some(token)
    }

    #[inline]
    fn unlock_read(&self, token: L::ReadToken) {
        self.inner.unlock_read(token);
    }

    #[inline]
    fn write(&self) -> L::WriteToken {
        if !self.write.armed() {
            return self.inner.write();
        }
        let contended = self.inner.is_locked();
        let sampling = self.write.sampling();
        let t0 = if sampling && contended { now_ns() } else { 0 };
        let token = self.inner.write();
        if t0 != 0 {
            self.write.add_wait_ns(now_ns().saturating_sub(t0));
        }
        self.write.record_acquisition(contended);
        self.write.note_hold_start();
        token
    }

    #[inline]
    fn try_write(&self) -> Option<L::WriteToken> {
        let token = self.inner.try_write()?;
        if self.write.armed() {
            self.write.record_acquisition(false);
            self.write.note_hold_start();
        }
        Some(token)
    }

    #[inline]
    fn unlock_write(&self, token: L::WriteToken) {
        self.write.note_hold_end();
        self.inner.unlock_write(token);
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.inner.is_locked()
    }

    #[inline]
    fn is_write_locked(&self) -> bool {
        self.inner.is_write_locked()
    }

    const NAME: &'static str = "instrumented-rw";
}

// ---------------------------------------------------------------------------
// Dynamic wrappers: telemetry over Arc<dyn PlainLock> / PlainRwLock.
// ---------------------------------------------------------------------------

/// Telemetry wrapper for runtime-chosen locks: the registry's
/// `instrumented-<name>` specs and the `repro --profile` mode
/// materialize these.
///
/// The inner lock's tokens pass through untouched (they stay tagged
/// with the *inner* lock in debug builds, and releases delegate, so
/// the ownership checks keep working).
pub struct InstrumentedPlain {
    inner: Arc<dyn PlainLock>,
    cell: Arc<TelemetryCell>,
}

impl InstrumentedPlain {
    /// Wrap `inner`, recording into `cell`.
    pub fn new(inner: Arc<dyn PlainLock>, cell: Arc<TelemetryCell>) -> Self {
        InstrumentedPlain { inner, cell }
    }

    /// The shared telemetry cell.
    pub fn cell(&self) -> &Arc<TelemetryCell> {
        &self.cell
    }
}

impl PlainLock for InstrumentedPlain {
    #[inline]
    fn acquire(&self) -> PlainToken {
        // Zero-cost-when-off: bail before any counter RMW.
        if !self.cell.armed() {
            return self.inner.acquire();
        }
        let contended = self.inner.held();
        let sampling = self.cell.sampling();
        let t0 = if sampling && contended { now_ns() } else { 0 };
        let token = self.inner.acquire();
        if t0 != 0 {
            self.cell.add_wait_ns(now_ns().saturating_sub(t0));
        }
        self.cell.record_acquisition(contended);
        self.cell.note_hold_start();
        token
    }

    #[inline]
    fn try_acquire(&self) -> Option<PlainToken> {
        let token = self.inner.try_acquire()?;
        if self.cell.armed() {
            self.cell.record_acquisition(false);
            self.cell.note_hold_start();
        }
        Some(token)
    }

    #[inline]
    fn release(&self, token: PlainToken) {
        self.cell.note_hold_end();
        self.inner.release(token);
    }

    #[inline]
    fn held(&self) -> bool {
        self.inner.held()
    }

    fn lock_name(&self) -> &'static str {
        // Telemetry is transparent: reports label rows by spec name.
        self.inner.lock_name()
    }
}

/// Reader-writer counterpart of [`InstrumentedPlain`]: one cell for
/// each side.
pub struct InstrumentedPlainRw {
    inner: Arc<dyn PlainRwLock>,
    read: Arc<TelemetryCell>,
    write: Arc<TelemetryCell>,
}

impl InstrumentedPlainRw {
    /// Wrap `inner`, recording into the given cells.
    pub fn new(
        inner: Arc<dyn PlainRwLock>,
        read: Arc<TelemetryCell>,
        write: Arc<TelemetryCell>,
    ) -> Self {
        InstrumentedPlainRw { inner, read, write }
    }
}

impl PlainRwLock for InstrumentedPlainRw {
    #[inline]
    fn acquire_read(&self) -> PlainRwToken {
        if !self.read.armed() {
            return self.inner.acquire_read();
        }
        let contended = self.inner.write_held();
        let sampling = self.read.sampling();
        let t0 = if sampling && contended { now_ns() } else { 0 };
        let token = self.inner.acquire_read();
        if t0 != 0 {
            self.read.add_wait_ns(now_ns().saturating_sub(t0));
        }
        self.read.record_acquisition(contended);
        token
    }

    #[inline]
    fn try_acquire_read(&self) -> Option<PlainRwToken> {
        let token = self.inner.try_acquire_read()?;
        if self.read.armed() {
            self.read.record_acquisition(false);
        }
        Some(token)
    }

    #[inline]
    fn release_read(&self, token: PlainRwToken) {
        self.inner.release_read(token);
    }

    #[inline]
    fn acquire_write(&self) -> PlainRwToken {
        if !self.write.armed() {
            return self.inner.acquire_write();
        }
        let contended = self.inner.held();
        let sampling = self.write.sampling();
        let t0 = if sampling && contended { now_ns() } else { 0 };
        let token = self.inner.acquire_write();
        if t0 != 0 {
            self.write.add_wait_ns(now_ns().saturating_sub(t0));
        }
        self.write.record_acquisition(contended);
        self.write.note_hold_start();
        token
    }

    #[inline]
    fn try_acquire_write(&self) -> Option<PlainRwToken> {
        let token = self.inner.try_acquire_write()?;
        if self.write.armed() {
            self.write.record_acquisition(false);
            self.write.note_hold_start();
        }
        Some(token)
    }

    #[inline]
    fn release_write(&self, token: PlainRwToken) {
        self.write.note_hold_end();
        self.inner.release_write(token);
    }

    #[inline]
    fn held(&self) -> bool {
        self.inner.held()
    }

    #[inline]
    fn write_held(&self) -> bool {
        self.inner.write_held()
    }

    fn rw_lock_name(&self) -> &'static str {
        self.inner.rw_lock_name()
    }
}

// ---------------------------------------------------------------------------
// Process-wide profiling registry.
// ---------------------------------------------------------------------------

static PROFILING: AtomicBool = AtomicBool::new(false);

/// The zero-cost-when-off gate: while false, every instrumented
/// wrapper whose cell is not locally sampled fast-exits before any
/// counter RMW.
static RECORDING: AtomicBool = AtomicBool::new(false);

/// One registry slot: a reporting label and the cell filed under it.
type LabeledCell = (String, Arc<TelemetryCell>);

fn registry() -> &'static Mutex<Vec<LabeledCell>> {
    static CELLS: OnceLock<Mutex<Vec<LabeledCell>>> = OnceLock::new();
    CELLS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Turn process-wide lock profiling on or off. While on,
/// [`maybe_instrument`] wraps locks and registers their cells (with
/// sampling enabled); the harness's `repro --profile` mode flips
/// this. Profiling implies [`recording`] — turning profiling off
/// turns the recording gate off too.
pub fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
    RECORDING.store(on, Ordering::Relaxed);
}

/// Whether process-wide lock profiling is on.
#[inline]
pub fn profiling() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Arm (or disarm) counter recording in every instrumented wrapper
/// without turning on the full profiling registry — counts only, no
/// clock reads. [`set_profiling`] toggles this too.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Whether instrumented wrappers currently record counts (see the
/// module-level cost model).
#[inline]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// File `cell` under `label` in the process-wide registry so
/// [`snapshots`] reports it.
pub fn register_cell(label: impl Into<String>, cell: Arc<TelemetryCell>) {
    registry()
        .lock()
        .expect("telemetry registry poisoned")
        .push((label.into(), cell));
}

/// Snapshot every registered cell, aggregated by label (several lock
/// instances created under the same label merge into one row),
/// preserving first-registration order.
pub fn snapshots() -> Vec<(String, TelemetrySnapshot)> {
    let cells = registry().lock().expect("telemetry registry poisoned");
    let mut out: Vec<(String, TelemetrySnapshot)> = Vec::new();
    for (label, cell) in cells.iter() {
        let snap = cell.snapshot();
        match out.iter_mut().find(|(l, _)| l == label) {
            Some((_, agg)) => *agg = agg.merged(&snap),
            None => out.push((label.clone(), snap)),
        }
    }
    out
}

/// Drop every registered cell (the harness clears between figures so
/// each profile table covers one figure's locks).
pub fn clear_registered() {
    registry()
        .lock()
        .expect("telemetry registry poisoned")
        .clear();
}

/// Number of cells currently registered. Pair with
/// [`truncate_registered`] for scoped cleanup: take the mark, register
/// throwaway cells (e.g. a measurement sweep), then truncate back —
/// without wiping cells other code registered before the mark.
pub fn registered_len() -> usize {
    registry()
        .lock()
        .expect("telemetry registry poisoned")
        .len()
}

/// Drop the cells registered at or after `mark` (a
/// [`registered_len`] reading). Registration appends, so this removes
/// exactly what was registered since the mark — provided no other
/// thread registered concurrently, which is the caller's contract.
pub fn truncate_registered(mark: usize) {
    registry()
        .lock()
        .expect("telemetry registry poisoned")
        .truncate(mark);
}

/// Wrap `lock` in an [`InstrumentedPlain`] recording into a fresh
/// cell registered under `label`. While [`profiling`] is on the cell
/// samples hold/wait timing; otherwise it records only while the
/// [`recording`] gate is armed, so an `instrumented-<name>` spec left
/// in a production config costs one branch per acquisition, not a
/// clock read.
pub fn instrument(label: &str, lock: Arc<dyn PlainLock>) -> Arc<dyn PlainLock> {
    let cell = Arc::new(TelemetryCell::new());
    if profiling() {
        cell.set_sampling(true);
    }
    register_cell(label, cell.clone());
    Arc::new(InstrumentedPlain::new(lock, cell))
}

/// Wrap `lock` in an [`InstrumentedPlainRw`] with fresh read/write
/// cells registered as `<label>.read` / `<label>.write` (sampling
/// follows [`profiling`], as in [`instrument`]).
pub fn instrument_rw(label: &str, lock: Arc<dyn PlainRwLock>) -> Arc<dyn PlainRwLock> {
    let read = Arc::new(TelemetryCell::new());
    let write = Arc::new(TelemetryCell::new());
    if profiling() {
        read.set_sampling(true);
        write.set_sampling(true);
    }
    register_cell(format!("{label}.read"), read.clone());
    register_cell(format!("{label}.write"), write.clone());
    Arc::new(InstrumentedPlainRw::new(lock, read, write))
}

/// [`instrument`] when profiling is on; otherwise pass `lock` through
/// untouched (zero overhead outside profile runs).
pub fn maybe_instrument(label: &str, lock: Arc<dyn PlainLock>) -> Arc<dyn PlainLock> {
    if profiling() {
        instrument(label, lock)
    } else {
        lock
    }
}

/// [`instrument_rw`] when profiling is on; otherwise pass through.
pub fn maybe_instrument_rw(label: &str, lock: Arc<dyn PlainRwLock>) -> Arc<dyn PlainRwLock> {
    if profiling() {
        instrument_rw(label, lock)
    } else {
        lock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::GuardedLock;
    use crate::{McsLock, RwTicketLock, TasLock};
    use std::sync::Arc;

    #[test]
    fn cell_counts_and_resets() {
        let c = TelemetryCell::new();
        c.record_acquisition(false);
        c.record_acquisition(true);
        c.add_spins(7);
        let s = c.snapshot();
        assert_eq!(s.acquisitions, 2);
        assert_eq!(s.contended, 1);
        assert_eq!(s.spin_iters, 7);
        assert_eq!(s.contention_ratio(), 0.5);
        c.reset();
        assert_eq!(c.snapshot(), TelemetrySnapshot::default());
    }

    #[test]
    fn sampling_gates_timing() {
        let c = TelemetryCell::new();
        // Off: hold notes are no-ops.
        c.note_hold_start();
        c.note_hold_end();
        assert_eq!(c.snapshot().hold_ns, 0);
        // On: a start/end pair accumulates.
        c.set_sampling(true);
        c.note_hold_start();
        asl_runtime::clock::busy_wait_ns(50_000);
        c.note_hold_end();
        assert!(c.snapshot().hold_ns >= 50_000);
    }

    #[test]
    fn instrumented_records_uncontended_and_contended() {
        let lock = Arc::new(Instrumented::sampled(McsLock::new()));
        {
            let _g = lock.guard();
        }
        let s = lock.telemetry().snapshot();
        assert_eq!(s.acquisitions, 1);
        assert_eq!(s.contended, 0);
        assert!(s.hold_ns > 0, "sampled hold time must accumulate");

        // Deterministic contention: hold here, acquire over there.
        let g = lock.guard();
        let l2 = lock.clone();
        let waiter = std::thread::spawn(move || {
            let _g = l2.guard(); // observes the lock held -> contended
        });
        // The waiter can only finish after we release.
        asl_runtime::clock::busy_wait_ns(200_000);
        drop(g);
        waiter.join().unwrap();
        let s = lock.telemetry().snapshot();
        assert_eq!(s.acquisitions, 3);
        assert_eq!(s.contended, 1);
        assert!(s.wait_ns > 0, "sampled wait time must accumulate");
    }

    #[test]
    fn unarmed_instrumented_is_a_passthrough() {
        // Neither the global recording gate nor local sampling is on:
        // the wrapper must not move any counter (the zero-cost-when-
        // off contract). Lock semantics still delegate fully.
        assert!(!recording(), "tests run with recording off by default");
        let lock = Instrumented::new(McsLock::new());
        {
            let _g = lock.guard();
            assert!(RawLock::is_locked(&lock));
        }
        let t = RawLock::try_lock(&lock).expect("free");
        RawLock::unlock(&lock, t);
        assert_eq!(lock.telemetry().snapshot(), TelemetrySnapshot::default());
    }

    #[test]
    fn instrumented_try_lock_counts_successes_only() {
        let lock = Instrumented::sampled(TasLock::new());
        let g = lock.try_guard().expect("free");
        assert!(lock.try_guard().is_none(), "held: try fails");
        drop(g);
        let s = lock.telemetry().snapshot();
        assert_eq!(s.acquisitions, 1, "failed try_lock is not an acquisition");
    }

    #[test]
    fn instrumented_rw_splits_read_write() {
        use crate::api::GuardedRwLock;
        let lock = InstrumentedRw::sampled(RwTicketLock::new());
        {
            let _r1 = lock.read_guard();
            let _r2 = lock.read_guard();
        }
        {
            let _w = lock.write_guard();
        }
        assert_eq!(lock.read_telemetry().snapshot().acquisitions, 2);
        assert_eq!(lock.write_telemetry().snapshot().acquisitions, 1);
    }

    #[test]
    fn plain_wrapper_delegates_and_records() {
        let cell = Arc::new(TelemetryCell::sampled());
        let lock: Arc<dyn PlainLock> = Arc::new(InstrumentedPlain::new(
            Arc::new(McsLock::new()),
            cell.clone(),
        ));
        let t = lock.acquire();
        assert!(lock.held());
        assert!(lock.try_acquire().is_none());
        lock.release(t);
        assert!(!lock.held());
        assert_eq!(lock.lock_name(), "mcs", "telemetry is name-transparent");
        assert_eq!(cell.snapshot().acquisitions, 1);
    }

    #[test]
    fn plain_rw_wrapper_delegates_and_records() {
        let read = Arc::new(TelemetryCell::sampled());
        let write = Arc::new(TelemetryCell::sampled());
        let lock: Arc<dyn PlainRwLock> = Arc::new(InstrumentedPlainRw::new(
            Arc::new(RwTicketLock::new()),
            read.clone(),
            write.clone(),
        ));
        let r = lock.acquire_read();
        let r2 = lock.try_acquire_read().expect("reads overlap");
        lock.release_read(r);
        lock.release_read(r2);
        let w = lock.acquire_write();
        assert!(lock.write_held());
        lock.release_write(w);
        assert_eq!(read.snapshot().acquisitions, 2);
        assert_eq!(write.snapshot().acquisitions, 1);
    }

    #[test]
    fn registry_aggregates_by_label() {
        // Serialize against other tests that toggle the global flag.
        clear_registered();
        let a = Arc::new(TelemetryCell::new());
        let b = Arc::new(TelemetryCell::new());
        a.record_acquisition(true);
        b.record_acquisition(false);
        register_cell("same", a);
        register_cell("same", b);
        let snaps = snapshots();
        let (_, merged) = snaps.iter().find(|(l, _)| l == "same").unwrap();
        assert_eq!(merged.acquisitions, 2);
        assert_eq!(merged.contended, 1);
        clear_registered();
        assert!(!snapshots().iter().any(|(l, _)| l == "same"));
    }

    #[test]
    fn truncate_registered_is_scoped() {
        // Cells registered before the mark survive a truncate; cells
        // registered after it are dropped. Unique labels, since the
        // registry is process-global.
        register_cell("trunc-test-before", Arc::new(TelemetryCell::new()));
        let mark = registered_len();
        register_cell("trunc-test-after", Arc::new(TelemetryCell::new()));
        assert!(registered_len() > mark);
        truncate_registered(mark);
        let labels: Vec<String> = snapshots().into_iter().map(|(l, _)| l).collect();
        assert!(labels.iter().any(|l| l == "trunc-test-before"));
        assert!(!labels.iter().any(|l| l == "trunc-test-after"));
    }

    #[test]
    fn contended_streak_advances_and_resets() {
        let c = TelemetryCell::new();
        assert_eq!(c.contended_streak(), 0);
        c.record_acquisition(true);
        c.record_acquisition(true);
        assert_eq!(c.contended_streak(), 2);
        c.record_acquisition(false);
        assert_eq!(c.contended_streak(), 0, "uncontended resets the streak");
        c.record_acquisition(true);
        assert_eq!(c.contended_streak(), 1);
        // The split API is streak-neutral (self-reporting locks keep
        // their own streaks — see `Adaptive`).
        c.record_contended();
        c.record_acquired();
        assert_eq!(c.contended_streak(), 1);
        c.reset();
        assert_eq!(c.contended_streak(), 0);
    }

    #[test]
    fn snapshot_delta_is_a_window() {
        let c = TelemetryCell::new();
        c.record_acquisition(true);
        c.add_spins(3);
        let early = c.snapshot();
        c.record_acquisition(false);
        c.record_acquisition(true);
        c.add_spins(4);
        c.add_wait_ns(100);
        let w = c.snapshot().delta(&early);
        assert_eq!(w.acquisitions, 2);
        assert_eq!(w.contended, 1);
        assert_eq!(w.spin_iters, 4);
        assert_eq!(w.wait_ns, 100);
        // Saturating: a reset between snapshots cannot underflow.
        c.reset();
        let w2 = c.snapshot().delta(&early);
        assert_eq!(w2.acquisitions, 0);
    }

    #[test]
    fn maybe_instrument_is_identity_when_off() {
        assert!(!profiling(), "tests run with profiling off by default");
        let inner: Arc<dyn PlainLock> = Arc::new(McsLock::new());
        let out = maybe_instrument("noop", inner.clone());
        assert!(Arc::ptr_eq(&inner, &out));
    }
}
