//! # asl-locks — the lock zoo
//!
//! Every lock the paper measures or builds on, implemented from
//! scratch over `core::sync::atomic`:
//!
//! | Lock | Paper role | Module |
//! |---|---|---|
//! | [`TasLock`] | unfair baseline whose affinity collapses latency (Figs. 1, 4) | [`tas`] |
//! | [`TicketLock`] | FIFO baseline (Fig. 8a) | [`ticket`] |
//! | [`BackoffLock`] | what LibASL degenerates to among little cores (§3.4) | [`backoff`] |
//! | [`McsLock`] | the FIFO queue under the reorderable lock (Figs. 1–10) | [`mcs`] |
//! | [`ClhLock`] | alternative FIFO substrate (ablation) | [`clh`] |
//! | [`ProportionalLock`] | SHFL-PB10: static proportional policy (Figs. 5, 8a, 8g, 9, 10) | [`proportional`] |
//! | [`PthreadMutex`] | glibc-style spin-then-futex blocking mutex (Figs. 8h, 8i) | [`blocking`] |
//! | [`McsStpLock`] | spin-then-park MCS, the blocking FIFO strawman of Bench-6 | [`blocking`] |
//! | [`CnaLock`] | compact NUMA-aware lock on core classes (§2.2 NUMA collapse) | [`cna`] |
//! | [`CohortLock`] | lock cohorting on core classes (§2.2 NUMA collapse) | [`cohort`] |
//! | [`MalthusianLock`] | culling + periodic reintroduction (§2.2 long-term fairness) | [`malthusian`] |
//! | [`ShuffleLock`] | ShflLock-style framework with pluggable policies (§5, ablations) | [`shuffle`] |
//! | [`FlatCombiner`] | flat-combining delegation (§5 related-work comparator) | [`flatcomb`] |
//! | [`CcSynch`] | combining-queue delegation, cache-local combiner handoff (§5) | [`ccsynch`] |
//! | [`RclLock`] | RCL-style client/server lock with managed server lifecycle (§5) | [`rcl`] |
//! | [`FcBan`] | usage-fair banning combiner: overdrawn threads wait out their overage | [`fcban`] |
//! | [`RwTicketLock`] | phase-fair ticket reader-writer lock (read-mostly workloads) | [`rw_ticket`] |
//! | [`Bravo`] | BRAVO-style reader-bias wrapper: any exclusive lock becomes an rwlock | [`bravo`] |
//! | [`Adaptive`] | contention-adaptive TAS that morphs to a FIFO queue (Fissile-style) | [`adaptive`] |
//!
//! The [`asynclock`] module is the task-parking counterpart of the
//! zoo: [`AsyncMutex`] (SLO-aware deadline-ordered wakes, the async
//! analogue of the paper's reorder window), [`AsyncFifoMutex`] (the
//! arrival-order baseline) and [`AsyncDynMutex`] (policy chosen at
//! runtime) park waiters as queued wakers instead of blocked
//! threads — the substrate for connection-per-task serving.
//!
//! Observability is a first-class layer: [`telemetry`] provides the
//! lock-agnostic [`telemetry::TelemetryCell`] counters, the
//! [`telemetry::Instrumented`] wrapper that records them for *any*
//! lock (plus reader-writer and object-safe counterparts), and the
//! process-wide profiling registry behind `repro --profile`. The
//! [`Adaptive`] lock is built on the same signal: it morphs substrate
//! when its own telemetry shows sustained contention.
//!
//! Robustness is another: [`timed`] defines [`RawTimedLock`]
//! (deadline-bounded acquisition with per-family back-out protocols,
//! implemented for TAS, ticket, MCS and `Gcr<L>`), and [`watchdog`]
//! provides the telemetry-fed [`StallWatchdog`] that dumps a
//! diagnostic snapshot instead of letting a stalled lock hang
//! silently.
//!
//! Three lock interfaces are provided, layered:
//!
//! * [`api`] — **the recommended surface**: RAII guards over any lock.
//!   [`api::Guard`] for a borrowed [`RawLock`], [`api::Mutex`] for a
//!   data-carrying mutex generic over its lock type, and
//!   [`api::DynLock`]/[`api::DynMutex`] for locks chosen at runtime.
//!   Releasing happens on drop (including panic unwind), so the
//!   forget-to-release and release-wrong-lock bug classes of the token
//!   APIs cannot occur.
//! * [`RawLock`] — statically dispatched, token-based. Tokens carry
//!   queue-node ownership (MCS/CLH) so locks stay allocation-free on
//!   the hot path. The reorderable lock in `asl-core` composes over
//!   any `RawLock + FifoLock`. Documented low-level escape hatch.
//! * [`PlainLock`] — object-safe facade (`Arc<dyn PlainLock>`) with a
//!   two-word opaque token, blanket-implemented for every raw lock
//!   whose token is word-encodable ([`plain::TokenWords`]). In debug
//!   builds tokens are tagged with the issuing lock and cross-lock
//!   releases panic.
//!
//! Each layer has a reader-writer counterpart: [`RawRwLock`] (token
//! interface with separate shared/exclusive tokens), the guard layer
//! in [`api`] ([`api::ReadGuard`]/[`api::WriteGuard`], the
//! data-carrying [`api::RwLock`], and [`api::DynRwLock`]/
//! [`api::DynRwMutex`] for runtime-chosen rwlocks), and the
//! object-safe [`PlainRwLock`] facade with the same debug-build
//! cross-lock release checks.
//!
//! ```
//! use asl_locks::api::{DynLock, Mutex};
//! use asl_locks::{McsLock, TicketLock};
//!
//! // Static dispatch: the lock implementation is a type parameter.
//! let hits: Mutex<u64, McsLock> = Mutex::new(0);
//! *hits.lock() += 1;
//! assert_eq!(*hits.lock(), 1);
//!
//! // Dynamic dispatch: pick the implementation at runtime.
//! let lock = DynLock::of(TicketLock::new());
//! {
//!     let _held = lock.lock();   // released when `_held` drops
//!     assert!(lock.is_locked());
//! }
//! assert!(!lock.is_locked());
//! ```

pub mod adaptive;
pub mod api;
pub mod asynclock;
pub mod backoff;
pub mod blocking;
pub mod bravo;
pub mod ccsynch;
pub mod clh;
pub mod cna;
pub mod cohort;
pub mod delegation;
pub mod fcban;
pub mod flatcomb;
pub mod futex;
pub mod gcr;
pub mod malthusian;
pub mod mcs;
pub mod plain;
pub mod proportional;
pub mod rcl;
pub mod rw_ticket;
pub mod shuffle;
pub mod tas;
pub mod telemetry;
pub mod ticket;
pub mod timed;
pub mod watchdog;

pub use adaptive::{Adaptive, AdaptiveMode, AdaptiveToken};
pub use api::{
    DynGuard, DynLock, DynMutex, DynMutexGuard, DynRwLock, DynRwMutex, Guard, GuardedLock,
    GuardedRwLock, Mutex, MutexGuard, ReadGuard, RwLock, WriteGuard,
};
pub use asynclock::{AsyncDynMutex, AsyncFifoMutex, AsyncGuard, AsyncMutex, AsyncPolicy};
pub use backoff::BackoffLock;
pub use blocking::{McsStpLock, PthreadMutex};
pub use bravo::Bravo;
pub use ccsynch::CcSynch;
pub use clh::ClhLock;
pub use cna::CnaLock;
pub use cohort::CohortLock;
pub use delegation::{
    bridge_apply, BridgeOp, DelegatedMutex, DelegationHandle, DelegationLock, SlotsExhausted,
    MAX_SLOTS,
};
pub use fcban::FcBan;
pub use flatcomb::{DedicatedServer, FlatCombiner};
pub use gcr::{Gate, Gcr, GcrConfig, GcrPlain};
pub use malthusian::MalthusianLock;
pub use mcs::McsLock;
pub use plain::{ExclusiveRw, PlainLock, PlainRwLock, PlainRwToken, PlainToken, WriteHalf};
pub use proportional::ProportionalLock;
pub use rcl::{RclLock, RclServer};
pub use rw_ticket::RwTicketLock;
pub use shuffle::{Candidate, ShuffleLock, ShufflePolicy};
pub use tas::TasLock;
pub use telemetry::{Instrumented, InstrumentedRw, TelemetryCell, TelemetrySnapshot};
pub use ticket::TicketLock;
pub use timed::RawTimedLock;
pub use watchdog::{StallReport, StallWatchdog, WatchSample, WatchdogConfig};

/// A statically dispatched lock.
///
/// `lock` returns a token that must be passed back to `unlock` by the
/// same thread. Queue locks use the token to carry their queue node;
/// simple locks use `()`.
pub trait RawLock: Send + Sync {
    /// Proof of acquisition, consumed by [`RawLock::unlock`].
    type Token;

    /// Acquire, blocking (spinning or parking) until granted.
    fn lock(&self) -> Self::Token;

    /// Try to acquire without waiting.
    fn try_lock(&self) -> Option<Self::Token>;

    /// Release. `token` must come from a matching `lock`/`try_lock`
    /// on this lock by the calling thread.
    fn unlock(&self, token: Self::Token);

    /// Heuristic "is anyone holding or queued" check — the
    /// reorderable lock's `is_lock_free` probe reads this. May be
    /// momentarily stale; never used for mutual exclusion itself.
    fn is_locked(&self) -> bool;

    /// Short lock name for reports.
    const NAME: &'static str;
}

/// Marker: the lock grants strictly in arrival (FIFO) order.
/// The reorderable lock requires its underlying lock to be FIFO for
/// the paper's bounded-reordering guarantee to hold.
pub trait FifoLock: RawLock {}

/// A statically dispatched reader-writer lock: the shared/exclusive
/// counterpart of [`RawLock`].
///
/// `read` admits any number of concurrent holders; `write` is
/// exclusive against both readers and other writers. Like [`RawLock`],
/// acquisitions return tokens that must be passed back to the matching
/// unlock by the same thread — application code should hold them as
/// RAII guards from [`api`] ([`api::ReadGuard`], [`api::WriteGuard`],
/// [`api::RwLock`]) instead of threading tokens by hand.
pub trait RawRwLock: Send + Sync {
    /// Proof of a shared acquisition, consumed by
    /// [`RawRwLock::unlock_read`].
    type ReadToken;

    /// Proof of an exclusive acquisition, consumed by
    /// [`RawRwLock::unlock_write`].
    type WriteToken;

    /// Acquire shared, blocking until granted. Multiple readers may
    /// hold the lock simultaneously; no writer can.
    fn read(&self) -> Self::ReadToken;

    /// Try to acquire shared without waiting.
    fn try_read(&self) -> Option<Self::ReadToken>;

    /// Release a shared acquisition. `token` must come from a matching
    /// `read`/`try_read` on this lock by the calling thread.
    fn unlock_read(&self, token: Self::ReadToken);

    /// Acquire exclusive, blocking until no reader or other writer
    /// holds the lock.
    fn write(&self) -> Self::WriteToken;

    /// Try to acquire exclusive without waiting.
    fn try_write(&self) -> Option<Self::WriteToken>;

    /// Release an exclusive acquisition. `token` must come from a
    /// matching `write`/`try_write` on this lock by the calling
    /// thread.
    fn unlock_write(&self, token: Self::WriteToken);

    /// Heuristic "is anyone holding or queued (in either mode)" check.
    /// May be momentarily stale; never used for mutual exclusion.
    fn is_locked(&self) -> bool;

    /// Heuristic "is a writer holding or draining readers" check.
    fn is_write_locked(&self) -> bool;

    /// Short lock name for reports.
    const NAME: &'static str;
}

#[cfg(test)]
mod tests {
    //! Cross-implementation mutual-exclusion tests: every lock type
    //! protects a plain (non-atomic) counter against data races.
    use super::*;
    use std::sync::Arc;

    fn hammer<L: RawLock + 'static>(lock: Arc<L>, threads: usize, iters: usize) -> u64 {
        // A non-atomic counter in an UnsafeCell: only mutual exclusion
        // makes this race-free.
        struct Shared<L> {
            lock: Arc<L>,
            value: std::cell::UnsafeCell<u64>,
        }
        unsafe impl<L: Send + Sync> Sync for Shared<L> {}
        let shared = Arc::new(Shared {
            lock,
            value: std::cell::UnsafeCell::new(0),
        });
        let mut handles = vec![];
        for _ in 0..threads {
            let s = shared.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..iters {
                    let tok = s.lock.lock();
                    unsafe { *s.value.get() += 1 };
                    s.lock.unlock(tok);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        unsafe { *shared.value.get() }
    }

    #[test]
    fn tas_mutual_exclusion() {
        assert_eq!(hammer(Arc::new(TasLock::default()), 8, 10_000), 80_000);
    }

    #[test]
    fn ticket_mutual_exclusion() {
        assert_eq!(hammer(Arc::new(TicketLock::new()), 8, 10_000), 80_000);
    }

    #[test]
    fn backoff_mutual_exclusion() {
        assert_eq!(hammer(Arc::new(BackoffLock::new()), 8, 10_000), 80_000);
    }

    #[test]
    fn mcs_mutual_exclusion() {
        assert_eq!(hammer(Arc::new(McsLock::new()), 8, 10_000), 80_000);
    }

    #[test]
    fn clh_mutual_exclusion() {
        assert_eq!(hammer(Arc::new(ClhLock::new()), 8, 10_000), 80_000);
    }

    #[test]
    fn proportional_mutual_exclusion() {
        assert_eq!(
            hammer(Arc::new(ProportionalLock::new(10)), 8, 10_000),
            80_000
        );
    }

    #[test]
    fn pthread_mutual_exclusion() {
        assert_eq!(hammer(Arc::new(PthreadMutex::new()), 8, 10_000), 80_000);
    }

    #[test]
    fn mcs_stp_mutual_exclusion() {
        assert_eq!(hammer(Arc::new(McsStpLock::new()), 8, 10_000), 80_000);
    }

    #[test]
    fn oversubscribed_blocking_locks_progress() {
        // 4x more threads than cores: blocking locks must still finish.
        let n = 4 * asl_runtime::affinity::online_cpus().min(8);
        assert_eq!(
            hammer(Arc::new(PthreadMutex::new()), n, 2_000) as usize,
            n * 2_000
        );
        assert_eq!(
            hammer(Arc::new(McsStpLock::new()), n, 2_000) as usize,
            n * 2_000
        );
    }
}
