//! Lock cohorting (Dice, Marathe & Shavit, PPoPP 2012 \[38\]), adapted
//! to AMP core classes — the second NUMA comparator of §2.2.
//!
//! A cohort lock is a two-level construction: one *global* lock plus
//! one *local* lock per node. A thread acquires its node's local lock
//! and, if it is the first of its cohort, the global lock; on release
//! it passes both to a local successor ("cohort passing") up to a
//! batch limit, after which the global lock is released so another
//! node gets its turn — the periodic long-term fairness that batches
//! little cores onto the critical path on AMP.
//!
//! This is C-BO-MCS from the paper: a test-and-set back-off global
//! lock and an MCS-style local queue per class, with the class
//! (big/little) playing the role of the NUMA node.

use std::cell::{Cell, RefCell};
use std::ptr::{self, NonNull};
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};

use asl_runtime::registry::current_core;
use asl_runtime::CoreKind;

use crate::backoff::BackoffLock;
use crate::RawLock;

const WAITING: u32 = 0;
/// Granted together with ownership of the global lock (cohort pass).
const GRANTED_GLOBAL: u32 = 1;
/// Granted the local lock only; the new holder must take the global.
const GRANTED_ALONE: u32 = 2;

/// Default maximum consecutive same-class handovers before the global
/// lock is surrendered (the cohort detection / fairness bound; the
/// original paper uses a similar per-cohort budget).
pub const DEFAULT_MAX_BATCH: u32 = 64;

/// Local-queue node.
#[repr(align(64))]
struct CohortNode {
    state: AtomicU32,
    next: AtomicPtr<CohortNode>,
}

impl CohortNode {
    fn new() -> Self {
        CohortNode {
            state: AtomicU32::new(WAITING),
            next: AtomicPtr::new(ptr::null_mut()),
        }
    }
}

thread_local! {
    static FREELIST: RefCell<Vec<NonNull<CohortNode>>> = const { RefCell::new(Vec::new()) };
}

fn take_node() -> NonNull<CohortNode> {
    FREELIST
        .with(|f| f.borrow_mut().pop())
        .unwrap_or_else(|| NonNull::from(Box::leak(Box::new(CohortNode::new()))))
}

fn put_node(node: NonNull<CohortNode>) {
    FREELIST.with(|f| f.borrow_mut().push(node));
}

/// Token proving acquisition of a [`CohortLock`].
pub struct CohortToken {
    node: NonNull<CohortNode>,
    class: usize,
}

impl CohortToken {
    /// Encode as two raw words (for the object-safe lock facade).
    #[inline]
    pub fn into_raw(self) -> (usize, usize) {
        (self.node.as_ptr() as usize, self.class)
    }

    /// Rebuild from words produced by [`CohortToken::into_raw`].
    ///
    /// # Safety
    /// The words must come from `into_raw` on an unreleased token of
    /// the same lock.
    #[inline]
    pub unsafe fn from_raw(node: usize, class: usize) -> Self {
        CohortToken {
            node: NonNull::new_unchecked(node as *mut CohortNode),
            class,
        }
    }
}

impl crate::plain::TokenWords for CohortToken {
    #[inline]
    fn into_words(self) -> (usize, usize) {
        self.into_raw()
    }
    #[inline]
    unsafe fn from_words(a: usize, b: usize) -> Self {
        Self::from_raw(a, b)
    }
}

/// One per-class local MCS queue.
struct LocalQueue {
    tail: AtomicPtr<CohortNode>,
}

/// Two-level class-cohort lock (C-BO-MCS on big/little classes).
pub struct CohortLock {
    global: BackoffLock,
    local: [LocalQueue; 2],
    /// Consecutive same-class handovers; only the global-lock holder
    /// touches this (plain cell is race-free under that discipline).
    batch: Cell<u32>,
    max_batch: u32,
}

// SAFETY: `batch` is only accessed while holding the global lock.
unsafe impl Send for CohortLock {}
unsafe impl Sync for CohortLock {}

fn class_index(kind: CoreKind) -> usize {
    match kind {
        CoreKind::Big => 0,
        CoreKind::Little => 1,
    }
}

impl CohortLock {
    /// New unlocked cohort lock with the default batch budget.
    pub fn new() -> Self {
        Self::with_batch(DEFAULT_MAX_BATCH)
    }

    /// New lock surrendering the global lock after `max_batch`
    /// consecutive same-class handovers (must be ≥ 1).
    ///
    /// # Panics
    /// Panics if `max_batch == 0`.
    pub fn with_batch(max_batch: u32) -> Self {
        assert!(max_batch >= 1, "batch budget must be >= 1");
        CohortLock {
            global: BackoffLock::new(),
            local: [
                LocalQueue {
                    tail: AtomicPtr::new(ptr::null_mut()),
                },
                LocalQueue {
                    tail: AtomicPtr::new(ptr::null_mut()),
                },
            ],
            batch: Cell::new(0),
            max_batch,
        }
    }

    /// The configured batch budget.
    pub fn max_batch(&self) -> u32 {
        self.max_batch
    }
}

impl Default for CohortLock {
    fn default() -> Self {
        Self::new()
    }
}

impl RawLock for CohortLock {
    type Token = CohortToken;

    fn lock(&self) -> CohortToken {
        let class = class_index(current_core().kind);
        let node = take_node();
        unsafe {
            node.as_ref().state.store(WAITING, Ordering::Relaxed);
            node.as_ref().next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        let pred = self.local[class].tail.swap(node.as_ptr(), Ordering::AcqRel);
        if pred.is_null() {
            // First of the cohort: contend for the global lock.
            self.global.lock();
            self.batch.set(0);
        } else {
            // SAFETY: `pred` is pinned until we store the link.
            let mut spin = asl_runtime::relax::Spin::new();
            unsafe {
                (*pred).next.store(node.as_ptr(), Ordering::Release);
                loop {
                    match node.as_ref().state.load(Ordering::Acquire) {
                        WAITING => {
                            spin.relax();
                        }
                        GRANTED_GLOBAL => break, // cohort pass: global is ours
                        _ => {
                            // Local lock only: take the global myself.
                            self.global.lock();
                            self.batch.set(0);
                            break;
                        }
                    }
                }
            }
        }
        CohortToken { node, class }
    }

    fn try_lock(&self) -> Option<CohortToken> {
        let class = class_index(current_core().kind);
        // Global first: failing here costs nothing to undo.
        self.global.try_lock()?;
        let node = take_node();
        unsafe {
            node.as_ref().state.store(WAITING, Ordering::Relaxed);
            node.as_ref().next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        match self.local[class].tail.compare_exchange(
            ptr::null_mut(),
            node.as_ptr(),
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                self.batch.set(0);
                Some(CohortToken { node, class })
            }
            Err(_) => {
                // A cohort-mate is queued locally; back out entirely.
                self.global.unlock(());
                put_node(node);
                None
            }
        }
    }

    fn unlock(&self, token: CohortToken) {
        let node = token.node;
        let queue = &self.local[token.class];
        // SAFETY: standard MCS successor protocol on the local queue.
        unsafe {
            let mut next = node.as_ref().next.load(Ordering::Acquire);
            if next.is_null() {
                if queue
                    .tail
                    .compare_exchange(
                        node.as_ptr(),
                        ptr::null_mut(),
                        Ordering::Release,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    // Cohort empty: surrender the global lock.
                    self.global.unlock(());
                    put_node(node);
                    return;
                }
                let mut spin = asl_runtime::relax::Spin::new();
                loop {
                    next = node.as_ref().next.load(Ordering::Acquire);
                    if !next.is_null() {
                        break;
                    }
                    spin.relax();
                }
            }
            let batch = self.batch.get() + 1;
            if batch < self.max_batch {
                // Cohort pass: hand over local + global together.
                self.batch.set(batch);
                (*next).state.store(GRANTED_GLOBAL, Ordering::Release);
            } else {
                // Budget exhausted: release the global lock so the
                // other class can compete, then grant locally.
                self.global.unlock(());
                (*next).state.store(GRANTED_ALONE, Ordering::Release);
            }
            put_node(node);
        }
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.global.is_locked()
    }

    const NAME: &'static str = "cohort";
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_runtime::registry::{register_on_core, unregister};
    use asl_runtime::topology::{CoreId, Topology};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn basic() {
        let l = CohortLock::new();
        assert!(!l.is_locked());
        let t = l.lock();
        assert!(l.is_locked());
        l.unlock(t);
        assert!(!l.is_locked());
    }

    #[test]
    fn try_lock_contended() {
        let l = CohortLock::new();
        let t = l.lock();
        assert!(l.try_lock().is_none());
        l.unlock(t);
        let t2 = l.try_lock().expect("free after unlock");
        l.unlock(t2);
    }

    #[test]
    #[should_panic]
    fn zero_batch_rejected() {
        let _ = CohortLock::with_batch(0);
    }

    #[test]
    fn batch_accessor() {
        assert_eq!(CohortLock::with_batch(5).max_batch(), 5);
        assert_eq!(CohortLock::new().max_batch(), DEFAULT_MAX_BATCH);
    }

    #[test]
    fn mutual_exclusion_one_class() {
        let l = Arc::new(CohortLock::new());
        let cell = Arc::new(UnsafeCellCounter::default());
        let mut handles = vec![];
        for _ in 0..8 {
            let l = l.clone();
            let c = cell.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..20_000 {
                    let t = l.lock();
                    c.bump();
                    l.unlock(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.get(), 160_000);
    }

    #[test]
    fn mutual_exclusion_mixed_classes() {
        // Big and little threads hammer the same lock; the global
        // lock must serialize across cohorts.
        let topo = Topology::apple_m1();
        let l = Arc::new(CohortLock::with_batch(8));
        let cell = Arc::new(UnsafeCellCounter::default());
        let mut handles = vec![];
        for i in 0..8 {
            let topo = topo.clone();
            let l = l.clone();
            let c = cell.clone();
            handles.push(std::thread::spawn(move || {
                register_on_core(&topo, CoreId(i));
                for _ in 0..10_000 {
                    let t = l.lock();
                    c.bump();
                    l.unlock(t);
                }
                unregister();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.get(), 80_000);
    }

    #[test]
    fn both_classes_progress_with_small_batch() {
        // With max_batch = 1 every handover surrenders the global
        // lock, so neither class can be starved; the fixed-iteration
        // threads must all terminate.
        let topo = Topology::apple_m1();
        let l = Arc::new(CohortLock::with_batch(1));
        let done = Arc::new(AtomicU64::new(0));
        let mut handles = vec![];
        for i in [0usize, 1, 4, 5] {
            let topo = topo.clone();
            let l = l.clone();
            let done = done.clone();
            handles.push(std::thread::spawn(move || {
                register_on_core(&topo, CoreId(i));
                for _ in 0..20_000 {
                    let t = l.lock();
                    l.unlock(t);
                }
                done.fetch_add(1, Ordering::Relaxed);
                unregister();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(done.load(Ordering::Relaxed), 4);
    }

    /// A non-atomic counter whose correctness depends entirely on the
    /// lock providing mutual exclusion.
    #[derive(Default)]
    struct UnsafeCellCounter(std::cell::UnsafeCell<u64>);
    // SAFETY: test-only; all access happens under the lock under test.
    unsafe impl Sync for UnsafeCellCounter {}
    unsafe impl Send for UnsafeCellCounter {}
    impl UnsafeCellCounter {
        fn bump(&self) {
            unsafe { *self.0.get() += 1 }
        }
        fn get(&self) -> u64 {
            unsafe { *self.0.get() }
        }
    }
}
