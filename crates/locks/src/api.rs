//! Guard-based unified lock API.
//!
//! The token interfaces ([`RawLock`], [`PlainLock`]) stay available as
//! the low-level escape hatch, but application code should hold
//! acquisitions as RAII values from this module instead of threading
//! tokens by hand — forgetting a `release` (silent deadlock) or
//! releasing against the wrong lock (queue-node corruption) becomes
//! impossible by construction:
//!
//! * [`Guard`] — an acquisition of any borrowed [`RawLock`], released
//!   on drop. [`GuardedLock::guard`] is blanket-implemented for every
//!   raw lock.
//! * [`Mutex`] — a data-carrying mutex generic over its lock
//!   implementation (`Mutex<T, L: RawLock>`, MCS by default); `lock`
//!   and `try_lock` return a [`MutexGuard`] that derefs to the data.
//! * [`DynLock`] / [`DynGuard`] — the same drop-safety for
//!   runtime-chosen locks (`Arc<dyn PlainLock>`), used wherever the
//!   paper's evaluation swaps lock implementations by name.
//! * [`DynMutex`] — a data-carrying mutex over a runtime-chosen lock;
//!   the building block of the database engines' guarded slots.
//!
//! Every shape has a reader-writer counterpart with the same
//! discipline: [`ReadGuard`]/[`WriteGuard`] over a borrowed
//! [`RawRwLock`], the data-carrying [`RwLock`], and
//! [`DynRwLock`]/[`DynRwMutex`] over `Arc<dyn PlainRwLock>` for
//! runtime-chosen rwlocks (shared guards overlap; exclusive guards
//! exclude everyone).
//!
//! ```
//! use asl_locks::api::{DynLock, Mutex};
//! use asl_locks::{McsLock, TasLock};
//!
//! // Statically dispatched: pick the lock type as a type parameter.
//! let counter: Mutex<u64, McsLock> = Mutex::new(0);
//! *counter.lock() += 1;
//! assert_eq!(*counter.lock(), 1);
//!
//! // Dynamically dispatched: pick the lock at runtime.
//! let lock = DynLock::of(TasLock::new());
//! {
//!     let _held = lock.lock();
//!     assert!(lock.is_locked());
//! } // released on drop — even on panic
//! assert!(!lock.is_locked());
//! ```

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Marker making guards `!Send`: a lock must be released by the
/// thread that acquired it (queue-node tokens are thread-local), so
/// no guard may migrate to another thread. Guards stay `Sync` —
/// sharing `&Guard` is harmless.
type NotSend = PhantomData<*const ()>;

use crate::mcs::McsLock;
use crate::plain::{PlainLock, PlainRwLock, PlainRwToken, PlainToken};
use crate::rw_ticket::RwTicketLock;
use crate::{RawLock, RawRwLock};

/// RAII acquisition of a borrowed [`RawLock`]: the token is captured
/// at acquisition and passed back to `unlock` on drop.
///
/// Guards are `!Send` — locks must be released by the acquiring
/// thread (queue-node tokens are thread-local):
///
/// ```compile_fail
/// fn assert_send<T: Send>(_: T) {}
/// let lock = asl_locks::McsLock::new();
/// let guard = asl_locks::api::Guard::new(&lock);
/// assert_send(guard); // must not compile: guards can't cross threads
/// ```
#[must_use = "a dropped guard releases the lock immediately"]
pub struct Guard<'a, L: RawLock> {
    lock: &'a L,
    token: Option<L::Token>,
    _not_send: NotSend,
}

// SAFETY: a shared &Guard only exposes &L (Sync) and the token is not
// reachable by reference; the !Send marker is what must not be lost.
unsafe impl<L: RawLock> Sync for Guard<'_, L> where L::Token: Sync {}

impl<'a, L: RawLock> Guard<'a, L> {
    /// Acquire `lock`, blocking until granted.
    #[inline]
    pub fn new(lock: &'a L) -> Self {
        let token = lock.lock();
        Guard {
            lock,
            token: Some(token),
            _not_send: PhantomData,
        }
    }

    /// Try to acquire `lock` without waiting.
    #[inline]
    #[must_use = "dropping the returned guard releases the lock again"]
    pub fn try_new(lock: &'a L) -> Option<Self> {
        lock.try_lock().map(|token| Guard {
            lock,
            token: Some(token),
            _not_send: PhantomData,
        })
    }

    /// Adopt a token obtained through the low-level API.
    ///
    /// # Safety
    /// `token` must come from `lock`/`try_lock` on this lock by the
    /// calling thread and must not have been released.
    #[inline]
    pub unsafe fn from_token(lock: &'a L, token: L::Token) -> Self {
        Guard {
            lock,
            token: Some(token),
            _not_send: PhantomData,
        }
    }

    /// Release now (equivalent to `drop`; reads better at call sites).
    #[inline]
    pub fn unlock(self) {}

    /// Escape hatch: surrender the token without releasing. The caller
    /// becomes responsible for passing it to [`RawLock::unlock`].
    #[inline]
    pub fn into_token(mut self) -> L::Token {
        self.token.take().expect("guard token already taken")
    }

    /// The lock this guard holds.
    #[inline]
    pub fn lock_ref(&self) -> &'a L {
        self.lock
    }
}

impl<L: RawLock> Drop for Guard<'_, L> {
    #[inline]
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            self.lock.unlock(token);
        }
    }
}

/// Guard-returning acquisition methods, blanket-implemented for every
/// [`RawLock`].
pub trait GuardedLock: RawLock + Sized {
    /// Acquire, returning an RAII guard.
    #[inline]
    fn guard(&self) -> Guard<'_, Self> {
        Guard::new(self)
    }

    /// Try to acquire without waiting.
    #[inline]
    #[must_use = "dropping the returned guard releases the lock again"]
    fn try_guard(&self) -> Option<Guard<'_, Self>> {
        Guard::try_new(self)
    }
}

impl<L: RawLock> GuardedLock for L {}

/// A mutual-exclusion container generic over its lock implementation.
///
/// Shaped like `std::sync::Mutex` but without poisoning (lock
/// protocols here are panic-agnostic, like `parking_lot`): a panic
/// inside the critical section releases the lock on unwind and the
/// next `lock` succeeds normally.
pub struct Mutex<T, L: RawLock = McsLock> {
    lock: L,
    data: UnsafeCell<T>,
}

// SAFETY: standard mutex reasoning — the lock serializes access.
unsafe impl<T: Send, L: RawLock> Send for Mutex<T, L> {}
unsafe impl<T: Send, L: RawLock> Sync for Mutex<T, L> {}

impl<T, L: RawLock + Default> Mutex<T, L> {
    /// New mutex over a default-constructed lock.
    pub fn new(value: T) -> Self {
        Mutex {
            lock: L::default(),
            data: UnsafeCell::new(value),
        }
    }
}

impl<T, L: RawLock> Mutex<T, L> {
    /// New mutex over a caller-supplied lock instance.
    pub fn with_lock(value: T, lock: L) -> Self {
        Mutex {
            lock,
            data: UnsafeCell::new(value),
        }
    }

    /// Acquire, returning an RAII guard that derefs to the data.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T, L> {
        let token = self.lock.lock();
        MutexGuard {
            mutex: self,
            token: Some(token),
            _not_send: PhantomData,
        }
    }

    /// Try to acquire without waiting.
    #[inline]
    #[must_use = "dropping the returned guard releases the lock again"]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T, L>> {
        self.lock.try_lock().map(|token| MutexGuard {
            mutex: self,
            token: Some(token),
            _not_send: PhantomData,
        })
    }

    /// Whether the lock is currently held or queued.
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.lock.is_locked()
    }

    /// The underlying lock (statistics, configuration).
    pub fn raw(&self) -> &L {
        &self.lock
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default, L: RawLock + Default> Default for Mutex<T, L> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug, L: RawLock> fmt::Debug for Mutex<T, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("Mutex");
        s.field("lock", &L::NAME);
        match self.try_lock() {
            Some(g) => s.field("data", &&*g),
            None => s.field("data", &format_args!("<locked>")),
        };
        s.finish()
    }
}

/// RAII guard for [`Mutex`]: derefs to the protected data, releases
/// the lock on drop.
#[must_use = "a dropped guard releases the lock immediately"]
pub struct MutexGuard<'a, T, L: RawLock> {
    mutex: &'a Mutex<T, L>,
    token: Option<L::Token>,
    _not_send: NotSend,
}

// SAFETY: a shared &MutexGuard exposes &T and &Mutex, both fine to
// share across threads; only Send must stay suppressed.
unsafe impl<T: Sync, L: RawLock> Sync for MutexGuard<'_, T, L> where L::Token: Sync {}

impl<'a, T, L: RawLock> MutexGuard<'a, T, L> {
    /// The mutex this guard locks (condvars use this to re-acquire
    /// after waiting).
    pub fn mutex(&self) -> &'a Mutex<T, L> {
        self.mutex
    }

    /// Release now (equivalent to `drop`).
    #[inline]
    pub fn unlock(self) {}
}

impl<T, L: RawLock> Deref for MutexGuard<'_, T, L> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: guard existence proves exclusive acquisition.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T, L: RawLock> DerefMut for MutexGuard<'_, T, L> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: guard existence proves exclusive acquisition.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T, L: RawLock> Drop for MutexGuard<'_, T, L> {
    #[inline]
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            self.mutex.lock.unlock(token);
        }
    }
}

/// An owned, runtime-chosen lock with RAII acquisition.
///
/// Wraps an `Arc<dyn PlainLock>` so call sites that pick their lock
/// implementation at runtime (the database engines, the harness) get
/// the same drop-safety as the static [`Guard`]. Cloning shares the
/// same underlying lock.
#[derive(Clone)]
pub struct DynLock {
    inner: Arc<dyn PlainLock>,
}

impl DynLock {
    /// Wrap an existing shared lock object.
    pub fn new(inner: Arc<dyn PlainLock>) -> Self {
        DynLock { inner }
    }

    /// Wrap a concrete lock value.
    pub fn of<L: PlainLock + 'static>(lock: L) -> Self {
        DynLock {
            inner: Arc::new(lock),
        }
    }

    /// Acquire, blocking until granted; released when the guard drops.
    #[inline]
    pub fn lock(&self) -> DynGuard<'_> {
        let token = self.inner.acquire();
        DynGuard {
            lock: &*self.inner,
            token: Some(token),
            _not_send: PhantomData,
        }
    }

    /// Try to acquire without waiting.
    #[inline]
    #[must_use = "dropping the returned guard releases the lock again"]
    pub fn try_lock(&self) -> Option<DynGuard<'_>> {
        self.inner.try_acquire().map(|token| DynGuard {
            lock: &*self.inner,
            token: Some(token),
            _not_send: PhantomData,
        })
    }

    /// Heuristic held/queued check.
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.inner.held()
    }

    /// Implementation name for reports.
    pub fn name(&self) -> &'static str {
        self.inner.lock_name()
    }

    /// The underlying shared lock object (token-API escape hatch).
    pub fn plain(&self) -> &Arc<dyn PlainLock> {
        &self.inner
    }
}

impl From<Arc<dyn PlainLock>> for DynLock {
    fn from(inner: Arc<dyn PlainLock>) -> Self {
        DynLock::new(inner)
    }
}

impl fmt::Debug for DynLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DynLock")
            .field("name", &self.name())
            .field("held", &self.is_locked())
            .finish()
    }
}

/// RAII acquisition of a [`DynLock`], released on drop.
///
/// `!Send` like every guard — release must happen on the acquiring
/// thread:
///
/// ```compile_fail
/// fn assert_send<T: Send>(_: T) {}
/// let lock = asl_locks::api::DynLock::of(asl_locks::McsLock::new());
/// assert_send(lock.lock()); // must not compile
/// ```
#[must_use = "a dropped guard releases the lock immediately"]
pub struct DynGuard<'a> {
    lock: &'a dyn PlainLock,
    token: Option<PlainToken>,
    _not_send: NotSend,
}

// SAFETY: a shared &DynGuard exposes nothing thread-unsafe; only Send
// must stay suppressed (release must happen on the acquiring thread).
unsafe impl Sync for DynGuard<'_> {}

impl DynGuard<'_> {
    /// Release now (equivalent to `drop`; reads better at call sites).
    #[inline]
    pub fn unlock(self) {}
}

impl Drop for DynGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            self.lock.release(token);
        }
    }
}

/// A mutual-exclusion container over a runtime-chosen lock.
///
/// The dynamic counterpart of [`Mutex`]: the lock implementation is an
/// `Arc<dyn PlainLock>` picked at construction (typically from a
/// `LockSpec` registry name), the data lives inside, and `lock`
/// returns a guard that derefs to it.
pub struct DynMutex<T> {
    lock: DynLock,
    data: UnsafeCell<T>,
}

// SAFETY: standard mutex reasoning — the lock serializes access.
unsafe impl<T: Send> Send for DynMutex<T> {}
unsafe impl<T: Send> Sync for DynMutex<T> {}

impl<T> DynMutex<T> {
    /// New mutex protecting `value` with `lock`.
    pub fn new(lock: impl Into<DynLock>, value: T) -> Self {
        DynMutex {
            lock: lock.into(),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquire, returning an RAII guard that derefs to the data.
    #[inline]
    pub fn lock(&self) -> DynMutexGuard<'_, T> {
        let token = self.lock.plain().acquire();
        DynMutexGuard {
            mutex: self,
            token: Some(token),
            _not_send: PhantomData,
        }
    }

    /// Try to acquire without waiting.
    #[inline]
    #[must_use = "dropping the returned guard releases the lock again"]
    pub fn try_lock(&self) -> Option<DynMutexGuard<'_, T>> {
        self.lock.plain().try_acquire().map(|token| DynMutexGuard {
            mutex: self,
            token: Some(token),
            _not_send: PhantomData,
        })
    }

    /// Whether the lock is currently held or queued.
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.lock.is_locked()
    }

    /// The lock handle (name, escape hatch).
    pub fn lock_handle(&self) -> &DynLock {
        &self.lock
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

/// RAII guard for [`DynMutex`]: derefs to the protected data.
#[must_use = "a dropped guard releases the lock immediately"]
pub struct DynMutexGuard<'a, T> {
    mutex: &'a DynMutex<T>,
    token: Option<PlainToken>,
    _not_send: NotSend,
}

// SAFETY: a shared &DynMutexGuard exposes &T / &DynMutex only; only
// Send must stay suppressed.
unsafe impl<T: Sync> Sync for DynMutexGuard<'_, T> {}

impl<T> DynMutexGuard<'_, T> {
    /// Release now (equivalent to `drop`).
    #[inline]
    pub fn unlock(self) {}
}

impl<T> Deref for DynMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: guard existence proves exclusive acquisition.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> DerefMut for DynMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: guard existence proves exclusive acquisition.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for DynMutexGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            self.mutex.lock.plain().release(token);
        }
    }
}

// ---------------------------------------------------------------------------
// Reader-writer layer: the same guard discipline over RawRwLock.
// ---------------------------------------------------------------------------

/// RAII shared acquisition of a borrowed [`RawRwLock`]; released on
/// drop. Multiple `ReadGuard`s may be live at once; none while a
/// [`WriteGuard`] is.
///
/// `!Send` like every guard — release must happen on the acquiring
/// thread:
///
/// ```compile_fail
/// fn assert_send<T: Send>(_: T) {}
/// let lock = asl_locks::RwTicketLock::new();
/// let guard = asl_locks::api::ReadGuard::new(&lock);
/// assert_send(guard); // must not compile: guards can't cross threads
/// ```
#[must_use = "a dropped guard releases the shared lock immediately"]
pub struct ReadGuard<'a, L: RawRwLock> {
    lock: &'a L,
    token: Option<L::ReadToken>,
    _not_send: NotSend,
}

// SAFETY: a shared &ReadGuard only exposes &L (Sync); only Send must
// stay suppressed.
unsafe impl<L: RawRwLock> Sync for ReadGuard<'_, L> where L::ReadToken: Sync {}

impl<'a, L: RawRwLock> ReadGuard<'a, L> {
    /// Acquire `lock` shared, blocking until granted.
    #[inline]
    pub fn new(lock: &'a L) -> Self {
        let token = lock.read();
        ReadGuard {
            lock,
            token: Some(token),
            _not_send: PhantomData,
        }
    }

    /// Try to acquire `lock` shared without waiting.
    #[inline]
    #[must_use = "dropping the returned guard releases the lock again"]
    pub fn try_new(lock: &'a L) -> Option<Self> {
        lock.try_read().map(|token| ReadGuard {
            lock,
            token: Some(token),
            _not_send: PhantomData,
        })
    }

    /// Release now (equivalent to `drop`; reads better at call sites).
    #[inline]
    pub fn unlock(self) {}

    /// The lock this guard holds shared.
    #[inline]
    pub fn lock_ref(&self) -> &'a L {
        self.lock
    }
}

impl<L: RawRwLock> Drop for ReadGuard<'_, L> {
    #[inline]
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            self.lock.unlock_read(token);
        }
    }
}

/// RAII exclusive acquisition of a borrowed [`RawRwLock`]; released on
/// drop.
#[must_use = "a dropped guard releases the exclusive lock immediately"]
pub struct WriteGuard<'a, L: RawRwLock> {
    lock: &'a L,
    token: Option<L::WriteToken>,
    _not_send: NotSend,
}

// SAFETY: as for ReadGuard.
unsafe impl<L: RawRwLock> Sync for WriteGuard<'_, L> where L::WriteToken: Sync {}

impl<'a, L: RawRwLock> WriteGuard<'a, L> {
    /// Acquire `lock` exclusive, blocking until granted.
    #[inline]
    pub fn new(lock: &'a L) -> Self {
        let token = lock.write();
        WriteGuard {
            lock,
            token: Some(token),
            _not_send: PhantomData,
        }
    }

    /// Try to acquire `lock` exclusive without waiting.
    #[inline]
    #[must_use = "dropping the returned guard releases the lock again"]
    pub fn try_new(lock: &'a L) -> Option<Self> {
        lock.try_write().map(|token| WriteGuard {
            lock,
            token: Some(token),
            _not_send: PhantomData,
        })
    }

    /// Release now (equivalent to `drop`).
    #[inline]
    pub fn unlock(self) {}

    /// The lock this guard holds exclusively.
    #[inline]
    pub fn lock_ref(&self) -> &'a L {
        self.lock
    }
}

impl<L: RawRwLock> Drop for WriteGuard<'_, L> {
    #[inline]
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            self.lock.unlock_write(token);
        }
    }
}

/// Guard-returning acquisition methods, blanket-implemented for every
/// [`RawRwLock`] — the reader-writer analogue of [`GuardedLock`].
pub trait GuardedRwLock: RawRwLock + Sized {
    /// Acquire shared, returning an RAII guard.
    #[inline]
    fn read_guard(&self) -> ReadGuard<'_, Self> {
        ReadGuard::new(self)
    }

    /// Try to acquire shared without waiting.
    #[inline]
    #[must_use = "dropping the returned guard releases the lock again"]
    fn try_read_guard(&self) -> Option<ReadGuard<'_, Self>> {
        ReadGuard::try_new(self)
    }

    /// Acquire exclusive, returning an RAII guard.
    #[inline]
    fn write_guard(&self) -> WriteGuard<'_, Self> {
        WriteGuard::new(self)
    }

    /// Try to acquire exclusive without waiting.
    #[inline]
    #[must_use = "dropping the returned guard releases the lock again"]
    fn try_write_guard(&self) -> Option<WriteGuard<'_, Self>> {
        WriteGuard::try_new(self)
    }
}

impl<L: RawRwLock> GuardedRwLock for L {}

/// A reader-writer container generic over its lock implementation —
/// the shared/exclusive counterpart of [`Mutex`].
///
/// Shaped like `std::sync::RwLock` but without poisoning: a panic
/// inside a read or write section releases the lock on unwind and the
/// next acquisition succeeds normally.
///
/// ```
/// use asl_locks::api::RwLock;
/// use asl_locks::RwTicketLock;
///
/// let cache: RwLock<Vec<u32>, RwTicketLock> = RwLock::new(vec![1, 2]);
/// cache.write().push(3);              // exclusive
/// let r1 = cache.read();              // shared...
/// let r2 = cache.read();              // ...with overlap
/// assert_eq!(r1.len() + r2.len(), 6);
/// ```
pub struct RwLock<T, L: RawRwLock = RwTicketLock> {
    lock: L,
    data: UnsafeCell<T>,
}

// SAFETY: standard rwlock reasoning — writers get exclusive access
// from any thread (T: Send) and readers share &T concurrently
// (T: Sync).
unsafe impl<T: Send, L: RawRwLock> Send for RwLock<T, L> {}
unsafe impl<T: Send + Sync, L: RawRwLock> Sync for RwLock<T, L> {}

impl<T, L: RawRwLock + Default> RwLock<T, L> {
    /// New rwlock over a default-constructed lock.
    pub fn new(value: T) -> Self {
        RwLock {
            lock: L::default(),
            data: UnsafeCell::new(value),
        }
    }
}

impl<T, L: RawRwLock> RwLock<T, L> {
    /// New rwlock over a caller-supplied lock instance.
    pub fn with_lock(value: T, lock: L) -> Self {
        RwLock {
            lock,
            data: UnsafeCell::new(value),
        }
    }

    /// Acquire shared, returning a guard that derefs to the data.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T, L> {
        let token = self.lock.read();
        RwLockReadGuard {
            rwlock: self,
            token: Some(token),
            _not_send: PhantomData,
        }
    }

    /// Try to acquire shared without waiting.
    #[inline]
    #[must_use = "dropping the returned guard releases the lock again"]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T, L>> {
        self.lock.try_read().map(|token| RwLockReadGuard {
            rwlock: self,
            token: Some(token),
            _not_send: PhantomData,
        })
    }

    /// Acquire exclusive, returning a guard that derefs mutably.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T, L> {
        let token = self.lock.write();
        RwLockWriteGuard {
            rwlock: self,
            token: Some(token),
            _not_send: PhantomData,
        }
    }

    /// Try to acquire exclusive without waiting.
    #[inline]
    #[must_use = "dropping the returned guard releases the lock again"]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T, L>> {
        self.lock.try_write().map(|token| RwLockWriteGuard {
            rwlock: self,
            token: Some(token),
            _not_send: PhantomData,
        })
    }

    /// Whether anyone holds or queues on the lock (either mode).
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.lock.is_locked()
    }

    /// The underlying lock (statistics, configuration).
    pub fn raw(&self) -> &L {
        &self.lock
    }

    /// Consume the rwlock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default, L: RawRwLock + Default> Default for RwLock<T, L> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug, L: RawRwLock> fmt::Debug for RwLock<T, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("RwLock");
        s.field("lock", &L::NAME);
        match self.try_read() {
            Some(g) => s.field("data", &&*g),
            None => s.field("data", &format_args!("<locked>")),
        };
        s.finish()
    }
}

/// Shared RAII guard for [`RwLock`]: derefs to the protected data.
#[must_use = "a dropped guard releases the shared lock immediately"]
pub struct RwLockReadGuard<'a, T, L: RawRwLock> {
    rwlock: &'a RwLock<T, L>,
    token: Option<L::ReadToken>,
    _not_send: NotSend,
}

// SAFETY: exposes &T / &RwLock only; only Send must stay suppressed.
unsafe impl<T: Sync, L: RawRwLock> Sync for RwLockReadGuard<'_, T, L> where L::ReadToken: Sync {}

impl<T, L: RawRwLock> RwLockReadGuard<'_, T, L> {
    /// Release now (equivalent to `drop`).
    #[inline]
    pub fn unlock(self) {}
}

impl<T, L: RawRwLock> Deref for RwLockReadGuard<'_, T, L> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: a live read guard proves no writer is active, so
        // shared access to the data is race-free.
        unsafe { &*self.rwlock.data.get() }
    }
}

impl<T, L: RawRwLock> Drop for RwLockReadGuard<'_, T, L> {
    #[inline]
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            self.rwlock.lock.unlock_read(token);
        }
    }
}

/// Exclusive RAII guard for [`RwLock`]: derefs mutably to the data.
#[must_use = "a dropped guard releases the exclusive lock immediately"]
pub struct RwLockWriteGuard<'a, T, L: RawRwLock> {
    rwlock: &'a RwLock<T, L>,
    token: Option<L::WriteToken>,
    _not_send: NotSend,
}

// SAFETY: as for RwLockReadGuard.
unsafe impl<T: Sync, L: RawRwLock> Sync for RwLockWriteGuard<'_, T, L> where L::WriteToken: Sync {}

impl<T, L: RawRwLock> RwLockWriteGuard<'_, T, L> {
    /// Release now (equivalent to `drop`).
    #[inline]
    pub fn unlock(self) {}
}

impl<T, L: RawRwLock> Deref for RwLockWriteGuard<'_, T, L> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: guard existence proves exclusive acquisition.
        unsafe { &*self.rwlock.data.get() }
    }
}

impl<T, L: RawRwLock> DerefMut for RwLockWriteGuard<'_, T, L> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: guard existence proves exclusive acquisition.
        unsafe { &mut *self.rwlock.data.get() }
    }
}

impl<T, L: RawRwLock> Drop for RwLockWriteGuard<'_, T, L> {
    #[inline]
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            self.rwlock.lock.unlock_write(token);
        }
    }
}

/// An owned, runtime-chosen reader-writer lock with RAII acquisition
/// — the shared/exclusive counterpart of [`DynLock`].
///
/// Wraps an `Arc<dyn PlainRwLock>`; cloning shares the same lock.
/// Exclusive locks slot in through
/// [`crate::plain::ExclusiveRw`] (their "read" mode degenerates to an
/// exclusive acquisition), which is how call sites can take shared
/// guards unconditionally and still run under any registry lock.
#[derive(Clone)]
pub struct DynRwLock {
    inner: Arc<dyn PlainRwLock>,
}

impl DynRwLock {
    /// Wrap an existing shared rwlock object.
    pub fn new(inner: Arc<dyn PlainRwLock>) -> Self {
        DynRwLock { inner }
    }

    /// Wrap a concrete rwlock value.
    pub fn of<L: PlainRwLock + 'static>(lock: L) -> Self {
        DynRwLock {
            inner: Arc::new(lock),
        }
    }

    /// Acquire shared; released when the guard drops.
    #[inline]
    pub fn read(&self) -> DynReadGuard<'_> {
        let token = self.inner.acquire_read();
        DynReadGuard {
            lock: &*self.inner,
            token: Some(token),
            _not_send: PhantomData,
        }
    }

    /// Try to acquire shared without waiting.
    #[inline]
    #[must_use = "dropping the returned guard releases the lock again"]
    pub fn try_read(&self) -> Option<DynReadGuard<'_>> {
        self.inner.try_acquire_read().map(|token| DynReadGuard {
            lock: &*self.inner,
            token: Some(token),
            _not_send: PhantomData,
        })
    }

    /// Acquire exclusive; released when the guard drops.
    #[inline]
    pub fn write(&self) -> DynWriteGuard<'_> {
        let token = self.inner.acquire_write();
        DynWriteGuard {
            lock: &*self.inner,
            token: Some(token),
            _not_send: PhantomData,
        }
    }

    /// Try to acquire exclusive without waiting.
    #[inline]
    #[must_use = "dropping the returned guard releases the lock again"]
    pub fn try_write(&self) -> Option<DynWriteGuard<'_>> {
        self.inner.try_acquire_write().map(|token| DynWriteGuard {
            lock: &*self.inner,
            token: Some(token),
            _not_send: PhantomData,
        })
    }

    /// Heuristic held/queued check (either mode).
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.inner.held()
    }

    /// Implementation name for reports.
    pub fn name(&self) -> &'static str {
        self.inner.rw_lock_name()
    }

    /// The underlying shared lock object (token-API escape hatch).
    pub fn plain(&self) -> &Arc<dyn PlainRwLock> {
        &self.inner
    }
}

impl From<Arc<dyn PlainRwLock>> for DynRwLock {
    fn from(inner: Arc<dyn PlainRwLock>) -> Self {
        DynRwLock::new(inner)
    }
}

impl fmt::Debug for DynRwLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DynRwLock")
            .field("name", &self.name())
            .field("held", &self.is_locked())
            .finish()
    }
}

/// Shared RAII acquisition of a [`DynRwLock`], released on drop.
#[must_use = "a dropped guard releases the shared lock immediately"]
pub struct DynReadGuard<'a> {
    lock: &'a dyn PlainRwLock,
    token: Option<PlainRwToken>,
    _not_send: NotSend,
}

// SAFETY: exposes nothing thread-unsafe; only Send must stay
// suppressed.
unsafe impl Sync for DynReadGuard<'_> {}

impl DynReadGuard<'_> {
    /// Release now (equivalent to `drop`).
    #[inline]
    pub fn unlock(self) {}
}

impl Drop for DynReadGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            self.lock.release_read(token);
        }
    }
}

/// Exclusive RAII acquisition of a [`DynRwLock`], released on drop.
#[must_use = "a dropped guard releases the exclusive lock immediately"]
pub struct DynWriteGuard<'a> {
    lock: &'a dyn PlainRwLock,
    token: Option<PlainRwToken>,
    _not_send: NotSend,
}

// SAFETY: as for DynReadGuard.
unsafe impl Sync for DynWriteGuard<'_> {}

impl DynWriteGuard<'_> {
    /// Release now (equivalent to `drop`).
    #[inline]
    pub fn unlock(self) {}
}

impl Drop for DynWriteGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            self.lock.release_write(token);
        }
    }
}

/// A reader-writer container over a runtime-chosen lock — the
/// shared/exclusive counterpart of [`DynMutex`] and the building block
/// of the database engines' read-mostly guarded slots.
///
/// ```
/// use asl_locks::api::{DynRwLock, DynRwMutex};
/// use asl_locks::RwTicketLock;
///
/// let index = DynRwMutex::new(DynRwLock::of(RwTicketLock::new()), vec![10, 20]);
/// index.write().push(30);              // exclusive
/// {
///     let a = index.read();            // shared...
///     let b = index.read();            // ...concurrently
///     assert_eq!(a.len(), 3);
///     assert_eq!(b[2], 30);
/// }
/// assert!(!index.is_locked());
/// ```
pub struct DynRwMutex<T> {
    lock: DynRwLock,
    data: UnsafeCell<T>,
}

// SAFETY: standard rwlock reasoning (see RwLock above).
unsafe impl<T: Send> Send for DynRwMutex<T> {}
unsafe impl<T: Send + Sync> Sync for DynRwMutex<T> {}

impl<T> DynRwMutex<T> {
    /// New rw-mutex protecting `value` with `lock`.
    pub fn new(lock: impl Into<DynRwLock>, value: T) -> Self {
        DynRwMutex {
            lock: lock.into(),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquire shared, returning a guard that derefs to the data.
    #[inline]
    pub fn read(&self) -> DynRwReadGuard<'_, T> {
        let token = self.lock.plain().acquire_read();
        DynRwReadGuard {
            mutex: self,
            token: Some(token),
            _not_send: PhantomData,
        }
    }

    /// Try to acquire shared without waiting.
    #[inline]
    #[must_use = "dropping the returned guard releases the lock again"]
    pub fn try_read(&self) -> Option<DynRwReadGuard<'_, T>> {
        self.lock
            .plain()
            .try_acquire_read()
            .map(|token| DynRwReadGuard {
                mutex: self,
                token: Some(token),
                _not_send: PhantomData,
            })
    }

    /// Acquire exclusive, returning a guard that derefs mutably.
    #[inline]
    pub fn write(&self) -> DynRwWriteGuard<'_, T> {
        let token = self.lock.plain().acquire_write();
        DynRwWriteGuard {
            mutex: self,
            token: Some(token),
            _not_send: PhantomData,
        }
    }

    /// Try to acquire exclusive without waiting.
    #[inline]
    #[must_use = "dropping the returned guard releases the lock again"]
    pub fn try_write(&self) -> Option<DynRwWriteGuard<'_, T>> {
        self.lock
            .plain()
            .try_acquire_write()
            .map(|token| DynRwWriteGuard {
                mutex: self,
                token: Some(token),
                _not_send: PhantomData,
            })
    }

    /// Whether the lock is currently held or queued (either mode).
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.lock.is_locked()
    }

    /// The lock handle (name, escape hatch).
    pub fn lock_handle(&self) -> &DynRwLock {
        &self.lock
    }

    /// Consume the rw-mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

/// Shared RAII guard for [`DynRwMutex`]: derefs to the data.
#[must_use = "a dropped guard releases the shared lock immediately"]
pub struct DynRwReadGuard<'a, T> {
    mutex: &'a DynRwMutex<T>,
    token: Option<PlainRwToken>,
    _not_send: NotSend,
}

// SAFETY: exposes &T / &DynRwMutex only; only Send must stay
// suppressed.
unsafe impl<T: Sync> Sync for DynRwReadGuard<'_, T> {}

impl<T> DynRwReadGuard<'_, T> {
    /// Release now (equivalent to `drop`).
    #[inline]
    pub fn unlock(self) {}
}

impl<T> Deref for DynRwReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: a live read guard proves no writer is active.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> Drop for DynRwReadGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            self.mutex.lock.plain().release_read(token);
        }
    }
}

/// Exclusive RAII guard for [`DynRwMutex`]: derefs mutably.
#[must_use = "a dropped guard releases the exclusive lock immediately"]
pub struct DynRwWriteGuard<'a, T> {
    mutex: &'a DynRwMutex<T>,
    token: Option<PlainRwToken>,
    _not_send: NotSend,
}

// SAFETY: as for DynRwReadGuard.
unsafe impl<T: Sync> Sync for DynRwWriteGuard<'_, T> {}

impl<T> DynRwWriteGuard<'_, T> {
    /// Release now (equivalent to `drop`).
    #[inline]
    pub fn unlock(self) {}
}

impl<T> Deref for DynRwWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: guard existence proves exclusive acquisition.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> DerefMut for DynRwWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: guard existence proves exclusive acquisition.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for DynRwWriteGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            self.mutex.lock.plain().release_write(token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClhLock, TasLock, TicketLock};

    #[test]
    fn raw_guard_releases_on_drop() {
        let lock = McsLock::new();
        {
            let _g = lock.guard();
            assert!(lock.is_locked());
            assert!(lock.try_guard().is_none());
        }
        assert!(!lock.is_locked());
    }

    #[test]
    fn guard_token_escape_hatch_roundtrip() {
        let lock = McsLock::new();
        let token = lock.guard().into_token();
        assert!(lock.is_locked());
        // SAFETY: token from the guard above, unreleased, same thread.
        // Dropped in place: re-adopting the token releases the lock.
        drop(unsafe { Guard::from_token(&lock, token) });
        assert!(!lock.is_locked());
    }

    #[test]
    fn static_mutex_over_several_substrates() {
        fn bump<L: RawLock + Default>() {
            let m: Mutex<u64, L> = Mutex::new(0);
            *m.lock() += 1;
            assert_eq!(*m.lock(), 1);
            assert_eq!(m.into_inner(), 1);
        }
        bump::<McsLock>();
        bump::<ClhLock>();
        bump::<TicketLock>();
        bump::<TasLock>();
    }

    #[test]
    fn dyn_mutex_guards_data() {
        let m = DynMutex::new(DynLock::of(TicketLock::new()), vec![1, 2]);
        m.lock().push(3);
        assert_eq!(&*m.lock(), &[1, 2, 3]);
        assert!(!m.is_locked());
        assert_eq!(m.lock_handle().name(), "ticket");
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn dyn_lock_try_lock_contention() {
        let lock = DynLock::of(TasLock::new());
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        g.unlock();
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn rw_guards_share_reads_exclude_writes() {
        let lock = RwTicketLock::new();
        {
            let r1 = lock.read_guard();
            let _r2 = lock.try_read_guard().expect("reads overlap");
            assert!(lock.try_write_guard().is_none(), "reader blocks writer");
            r1.unlock();
        }
        {
            let _w = lock.write_guard();
            assert!(lock.try_read_guard().is_none(), "writer blocks reader");
            assert!(lock.try_write_guard().is_none(), "writer blocks writer");
        }
        assert!(!lock.is_locked());
    }

    #[test]
    fn static_rwlock_guards_data() {
        let l: RwLock<Vec<u32>, RwTicketLock> = RwLock::new(vec![1]);
        l.write().push(2);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(&*a, &[1, 2]);
            assert_eq!(a.len(), b.len());
        }
        assert!(!l.is_locked());
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn dyn_rw_mutex_over_rw_and_exclusive_substrates() {
        use crate::plain::ExclusiveRw;

        // Native rwlock: reads genuinely overlap.
        let m = DynRwMutex::new(DynRwLock::of(RwTicketLock::new()), 7u64);
        {
            let a = m.read();
            let b = m.read();
            assert_eq!(*a + *b, 14);
        }
        *m.write() += 1;
        assert_eq!(*m.read(), 8);
        assert_eq!(m.lock_handle().name(), "rw-ticket");

        // Exclusive lock through the same interface: reads serialize
        // but the call sites do not change.
        let m = DynRwMutex::new(
            DynRwLock::new(Arc::new(ExclusiveRw::new(Arc::new(McsLock::new())))),
            7u64,
        );
        {
            let a = m.read();
            assert!(m.try_read().is_none(), "exclusive substrate: no overlap");
            assert_eq!(*a, 7);
        }
        *m.write() += 1;
        assert_eq!(*m.read(), 8);
        assert_eq!(m.lock_handle().name(), "mcs");
    }

    #[test]
    fn dyn_rw_lock_guards_release_on_drop() {
        let lock = DynRwLock::of(RwTicketLock::new());
        {
            let _r = lock.read();
            assert!(lock.is_locked());
            assert!(lock.try_write().is_none());
        }
        {
            let _w = lock.write();
            assert!(lock.try_read().is_none());
        }
        assert!(!lock.is_locked());
        assert!(lock.try_write().is_some());
    }
}
