//! Timed / abortable acquisition: [`RawTimedLock`].
//!
//! Locking with a deadline is the robustness counterpart of the
//! paper's reorder window: a waiter that can *give up* bounds the
//! damage of a stalled or preempted holder instead of inheriting it.
//! Each lock family needs its own back-out protocol, because
//! abandoning a wait means undoing whatever queue state the wait
//! published:
//!
//! | Lock | Back-out protocol |
//! |---|---|
//! | [`crate::TasLock`] | nothing published — just stop competing |
//! | [`crate::TicketLock`] | retract the tail ticket, or deed it to the abandon list the release path drains (the drain-target idiom from [`crate::rw_ticket`]) |
//! | [`crate::McsLock`] | CAS the queue node `WAITING → ABANDONED`; the eventual granter adopts and reclaims it |
//! | [`crate::Gcr`]`<L>` | the passive self-rescue path unlinks the waiter; admission rolls back on inner timeout |
//!
//! Deadlines are absolute virtual/monotonic nanoseconds (the
//! [`asl_runtime::clock`] timeline, so the simulator and the fault
//! injector both steer them). Wait loops check the deadline through
//! the *coarse* clock — a timed spin must not pay a `clock_gettime`
//! per probe — so expirations can be observed a few polls late, never
//! early.

use crate::RawLock;

/// A [`RawLock`] that can abandon an acquisition at a deadline.
///
/// The contract mirrors `lock`: `Some(token)` is a full acquisition
/// (release with [`RawLock::unlock`]); `None` means the wait was
/// abandoned with **no residue** — no queue slot, no admission, no
/// node the releaser could hand the lock to. A `None` a moment before
/// the grant would have landed is allowed (the grant goes to the next
/// waiter or frees the lock); a token returned a moment *after* the
/// deadline is allowed too (the caller observed the grant late — it
/// holds the lock and must release it).
pub trait RawTimedLock: RawLock {
    /// Try to acquire until the absolute deadline
    /// (`asl_runtime::clock` nanoseconds) passes.
    fn try_lock_until(&self, deadline_ns: u64) -> Option<Self::Token>;

    /// Try to acquire for at most `timeout_ns` from now. Anchors the
    /// deadline with one precise clock read, saturating at the end of
    /// time (`u64::MAX` means "wait like `lock`").
    fn try_lock_for(&self, timeout_ns: u64) -> Option<Self::Token> {
        let deadline = asl_runtime::clock::now_ns().saturating_add(timeout_ns);
        self.try_lock_until(deadline)
    }
}

#[cfg(test)]
// Several zoo tokens are unit types; the explicit bindings keep the
// acquire/unlock pairing readable and symmetric across families.
#[allow(clippy::let_unit_value)]
mod tests {
    use super::*;
    use crate::{Gcr, GcrConfig, McsLock, RawLock, TasLock, TicketLock};
    use asl_runtime::clock::{ms, now_ns};
    use std::sync::Arc;

    /// Timeout while held must return None in bounded time; the lock
    /// must still work afterwards.
    fn timeout_then_reacquire<L: RawTimedLock>(lock: L) {
        let held = lock.lock();
        let t0 = now_ns();
        assert!(
            lock.try_lock_for(ms(5)).is_none(),
            "{}: acquired a held lock",
            L::NAME
        );
        let waited = now_ns() - t0;
        assert!(waited >= ms(4), "{}: gave up early ({waited}ns)", L::NAME);
        assert!(
            waited < ms(2_000),
            "{}: timeout unbounded ({waited}ns)",
            L::NAME
        );
        lock.unlock(held);
        let t = lock
            .try_lock_for(ms(100))
            .unwrap_or_else(|| panic!("{}: free lock not acquired", L::NAME));
        lock.unlock(t);
        // And the untimed path still works after an abandon.
        let t = lock.lock();
        lock.unlock(t);
        assert!(!lock.is_locked(), "{}: residue after abandon", L::NAME);
    }

    #[test]
    fn tas_timeout_then_reacquire() {
        timeout_then_reacquire(TasLock::new());
    }

    #[test]
    fn ticket_timeout_then_reacquire() {
        timeout_then_reacquire(TicketLock::new());
    }

    #[test]
    fn mcs_timeout_then_reacquire() {
        timeout_then_reacquire(McsLock::new());
    }

    #[test]
    fn gcr_timeout_then_reacquire() {
        timeout_then_reacquire(Gcr::with_config(McsLock::new(), GcrConfig::fixed(1)));
    }

    #[test]
    fn free_lock_timed_acquire_is_immediate() {
        let l = TicketLock::new();
        let t = l.try_lock_for(0).expect("free lock, zero timeout");
        l.unlock(t);
        let m = McsLock::new();
        let t = m.try_lock_for(0).expect("free lock, zero timeout");
        m.unlock(t);
    }

    /// Ticket: an abandoned middle ticket must not wedge the grant
    /// chain — the release path drains it through to the live waiter.
    #[test]
    fn ticket_abandoned_middle_ticket_is_drained() {
        let l = Arc::new(TicketLock::new());
        let held = l.lock();
        // A waiter that will abandon (ticket 1)...
        let l1 = l.clone();
        let abandoner = std::thread::spawn(move || {
            assert!(l1.try_lock_for(ms(20)).is_none());
        });
        while l.queue_depth() < 2 {
            std::thread::yield_now();
        }
        // ...and a live waiter behind it (ticket 2), so the abandoner
        // cannot retract its tail ticket and must deed it instead.
        let l2 = l.clone();
        let live = std::thread::spawn(move || {
            let t = l2.lock();
            l2.unlock(t);
        });
        while l.queue_depth() < 3 {
            std::thread::yield_now();
        }
        abandoner.join().unwrap();
        l.unlock(held);
        // The release must skip the abandoned ticket and grant the
        // live waiter; if it doesn't, this join hangs.
        live.join().unwrap();
        assert!(!l.is_locked());
    }

    /// MCS: a chain of abandoned nodes between holder and live waiter
    /// is adopted and reclaimed by the releaser.
    #[test]
    fn mcs_abandon_chain_is_adopted() {
        let l = Arc::new(McsLock::new());
        let held = l.lock();
        let mut abandoners = vec![];
        for _ in 0..3 {
            let li = l.clone();
            abandoners.push(std::thread::spawn(move || {
                assert!(li.try_lock_for(ms(20)).is_none());
            }));
            // Order the enqueues so all three are queued abandons.
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        for a in abandoners {
            a.join().unwrap();
        }
        let l2 = l.clone();
        let live = std::thread::spawn(move || {
            let t = l2.lock();
            l2.unlock(t);
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        l.unlock(held);
        live.join().unwrap();
        assert!(!l.is_locked());
    }

    /// Gcr: a timed-out admission leaves no slot behind — the gate's
    /// active count returns to the survivors only.
    #[test]
    fn gcr_timeout_rolls_back_admission() {
        let g = Arc::new(Gcr::with_config(TasLock::new(), GcrConfig::fixed(1)));
        let held = g.lock();
        assert_eq!(g.active(), 1);
        let g2 = g.clone();
        let t = std::thread::spawn(move || {
            assert!(g2.try_lock_for(ms(30)).is_none());
        });
        t.join().unwrap();
        assert_eq!(g.active(), 1, "timed-out waiter leaked an admission");
        g.unlock(held);
        assert_eq!(g.active(), 0);
        let t = g.try_lock_for(ms(100)).expect("free gcr");
        g.unlock(t);
    }

    /// Mixed timed/untimed stress: mutual exclusion holds and every
    /// timed failure really means "did not enter the critical
    /// section".
    #[test]
    fn timed_stress_mutual_exclusion() {
        fn stress<L: RawTimedLock + 'static>(lock: Arc<L>) {
            struct Shared<L> {
                lock: Arc<L>,
                value: std::cell::UnsafeCell<u64>,
            }
            unsafe impl<L: Send + Sync> Sync for Shared<L> {}
            let shared = Arc::new(Shared {
                lock,
                value: std::cell::UnsafeCell::new(0),
            });
            let mut handles = vec![];
            let mut expected = 0u64;
            for i in 0..6 {
                let s = shared.clone();
                // Half the threads use the timed path with a deadline
                // long enough to always win; half use plain lock.
                let timed = i % 2 == 0;
                expected += 3_000;
                handles.push(std::thread::spawn(move || {
                    for _ in 0..3_000 {
                        let tok = if timed {
                            s.lock.try_lock_for(ms(10_000)).expect("10s deadline lost")
                        } else {
                            s.lock.lock()
                        };
                        unsafe { *s.value.get() += 1 };
                        s.lock.unlock(tok);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(unsafe { *shared.value.get() }, expected);
        }
        stress(Arc::new(TasLock::new()));
        stress(Arc::new(TicketLock::new()));
        stress(Arc::new(McsLock::new()));
        stress(Arc::new(Gcr::with_config(
            McsLock::new(),
            GcrConfig::fixed(2),
        )));
    }

    /// Short-deadline churn against a held lock: abandons from many
    /// threads at once leave the queue structures consistent.
    #[test]
    fn timed_abandon_churn() {
        fn churn<L: RawTimedLock + 'static>(lock: Arc<L>) {
            let held = lock.lock();
            let mut handles = vec![];
            for _ in 0..6 {
                let l = lock.clone();
                handles.push(std::thread::spawn(move || {
                    let mut gave_up = 0;
                    for _ in 0..50 {
                        if l.try_lock_for(ms(1)).is_none() {
                            gave_up += 1;
                        } else {
                            unreachable!("lock is held for the whole churn");
                        }
                    }
                    gave_up
                }));
            }
            let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 300);
            lock.unlock(held);
            let t = lock.lock();
            lock.unlock(t);
            assert!(!lock.is_locked());
        }
        churn(Arc::new(TasLock::new()));
        churn(Arc::new(TicketLock::new()));
        churn(Arc::new(McsLock::new()));
        churn(Arc::new(Gcr::with_config(
            TicketLock::new(),
            GcrConfig::fixed(1),
        )));
    }
}
