//! Bench-2 in miniature: watch the reorder window self-adapt.
//!
//! One little-core thread competes with three big-core threads for a
//! LibASL lock while the epoch length changes abruptly (1× → 8× →
//! 1× → 32×-infeasible). The example prints the little thread's epoch
//! latency and its current reorder window over time: on every SLO
//! violation the window halves; afterwards it climbs back linearly —
//! the TCP-style feedback of paper Algorithm 2.
//!
//! Run with: `cargo run --release --example variable_load`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use libasl::epoch;
use libasl::runtime::spawn::run_on_topology_with_stop;
use libasl::runtime::work::execute_units;
use libasl::runtime::{CoreKind, Topology};
use libasl::AslMutex;

const SLO_NS: u64 = 400_000; // 400 µs
const BASE_UNITS: u64 = 2_000;

fn main() {
    let topology = Topology::apple_m1();
    let lock = Arc::new(AslMutex::new(0u64));
    let multiplier = Arc::new(AtomicU64::new(1));
    let stop = Arc::new(AtomicBool::new(false));

    println!(
        "SLO = {} us; phases: x1, x8, x1, x32 (infeasible)",
        SLO_NS / 1_000
    );
    println!("t_ms  phase  little_latency_us  window_us");

    // Phase controller.
    let controller = {
        let multiplier = multiplier.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            for (ms, m) in [(300u64, 1u64), (300, 8), (300, 1), (300, 32)] {
                multiplier.store(m, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            stop.store(true, Ordering::Relaxed);
        })
    };

    let t0 = std::time::Instant::now();
    let lock2 = lock.clone();
    let mult2 = multiplier.clone();
    run_on_topology_with_stop(&topology, 5, true, stop, move |ctx| {
        epoch::reset_thread_epochs();
        // Workers 0-3 are big cores; worker 4 is the observed little.
        let is_little = ctx.assignment.kind == CoreKind::Little;
        let mut printed = 0u64;
        while !ctx.stopped() {
            let m = mult2.load(Ordering::Relaxed);
            let (_, latency) = epoch::with_epoch_timed(0, SLO_NS, || {
                let mut g = lock2.lock();
                *g += 1;
                execute_units(BASE_UNITS * m);
            });
            execute_units(BASE_UNITS / 2);
            if is_little {
                let t_ms = t0.elapsed().as_millis() as u64;
                // Print roughly every 40 ms of progress.
                if t_ms / 40 > printed {
                    printed = t_ms / 40;
                    let w = epoch::epoch_meta(0).window;
                    println!(
                        "{:>4}  x{:<4} {:>18.1} {:>10.1}{}",
                        t_ms,
                        m,
                        latency as f64 / 1_000.0,
                        w as f64 / 1_000.0,
                        if latency > SLO_NS {
                            "  <-- SLO violated, window halves"
                        } else {
                            ""
                        }
                    );
                }
            }
        }
    });
    controller.join().unwrap();

    println!("\ntotal critical sections: {}", *lock.lock());
    println!("expected shape: window collapses at each phase switch, then grows");
    println!("linearly; during the x32 phase LibASL stays collapsed (FIFO fallback).");
}
