//! Bench-6 in miniature: blocking LibASL under core over-subscription.
//!
//! Sixteen threads on eight emulated cores. Spinning wastes the CPU
//! the lock holder needs, so this configuration swaps the MCS lock
//! for a futex-based mutex and the spinning standby wait for
//! `nanosleep` back-off — the paper's blocking LibASL. Compare it
//! against the plain pthread-style mutex and the spin-then-park MCS.
//!
//! Run with: `cargo run --release --example oversubscribed`

use libasl::harness::figures::{run_micro, Profile};
use libasl::harness::locks::LockSpec;
use libasl::harness::scenario::MicroScenario;

fn main() {
    let profile = Profile::quick();
    let threads = 16; // 2x over-subscription of the 8-core topology

    println!("Bench-1 workload, {threads} threads on 8 emulated cores\n");
    println!(
        "{:<18} {:>12} {:>14} {:>14}",
        "lock", "ops/s", "overall P99 us", "little P99 us"
    );

    // Anchor SLOs on the blocking mutex tail.
    let pthread = run_micro(
        &profile,
        &MicroScenario::bench1(&LockSpec::Pthread),
        threads,
    );
    let anchor = pthread.overall.p99().max(1_000);
    print_row("pthread", &pthread);

    let stp = run_micro(&profile, &MicroScenario::bench1(&LockSpec::McsStp), threads);
    print_row("mcs-stp", &stp);

    for (label, slo) in [
        ("libasl-blk (0)", Some(0u64)),
        ("libasl-blk (1x)", Some(anchor)),
        ("libasl-blk (2x)", Some(anchor * 2)),
        ("libasl-blk (max)", None),
    ] {
        let r = run_micro(
            &profile,
            &MicroScenario::bench1(&LockSpec::AslBlocking { slo_ns: slo }),
            threads,
        );
        print_row(label, &r);
    }

    println!("\nexpected shape (paper Fig. 8h): FIFO + parking (mcs-stp) collapses —");
    println!("every handover pays a wake-up; blocking LibASL beats pthread as the SLO loosens.");
}

fn print_row(label: &str, r: &libasl::harness::runner::RunResult) {
    println!(
        "{:<18} {:>12.0} {:>14.1} {:>14.1}",
        label,
        r.throughput,
        r.overall.p99() as f64 / 1_000.0,
        r.little.p99() as f64 / 1_000.0
    );
}
