//! The paper's SLO profiling tool (§3.1).
//!
//! "For applications without clear SLOs, LibASL provides a profiling
//! tool that generates a latency-throughput graph to help choose
//! suitable SLOs." This example profiles the Bench-1 micro-workload
//! across an SLO range, prints the curve, and recommends a setting.
//!
//! Run with: `cargo run --release --example profiling_tool`

use libasl::core::profile::{
    profile_slo_range, recommend_slo, render_table, slo_steps, ProfileSample,
};
use libasl::harness::figures::{run_micro, Profile};
use libasl::harness::locks::LockSpec;
use libasl::harness::scenario::MicroScenario;
use libasl::locks::telemetry;

fn main() {
    let profile = Profile::quick();

    // Record per-lock telemetry for every lock the registry builds:
    // each profile point carries the shared TelemetrySnapshot, so the
    // curve shows *why* each SLO lands where it does (contention).
    telemetry::set_profiling(true);

    // Anchor the range on the FIFO tail (below it, SLOs are
    // infeasible and LibASL just behaves like MCS).
    let mcs = run_micro(&profile, &MicroScenario::bench1(&LockSpec::Mcs), 8);
    let anchor = mcs.overall.p99().max(1_000);
    println!(
        "baseline MCS: {:.0} ops/s, P99 {:.1} us",
        mcs.throughput,
        anchor as f64 / 1_000.0
    );

    let range = slo_steps(anchor / 2, anchor * 6, 8);
    println!("\nprofiling {} SLO settings...\n", range.len());

    let points = profile_slo_range(range, |slo_ns| {
        telemetry::clear_registered();
        let scenario = MicroScenario::bench1(&LockSpec::asl(Some(slo_ns)));
        let r = run_micro(&profile, &scenario, 8);
        // Aggregate this point's per-lock telemetry into one sample.
        let telemetry = r.telemetry.iter().fold(
            Default::default(),
            |acc: libasl::locks::TelemetrySnapshot, (_, s)| acc.merged(s),
        );
        ProfileSample {
            throughput: r.throughput,
            p99_ns: r.overall.p99(),
            telemetry,
        }
    });

    println!("{}", render_table(&points));

    match recommend_slo(&points, 1.10) {
        Some(p) => println!(
            "recommended SLO: {:.0} us ({:.0} ops/s at P99 {:.1} us)",
            p.slo_ns as f64 / 1_000.0,
            p.throughput,
            p.p99_ns as f64 / 1_000.0
        ),
        None => println!("no profiled SLO kept its own tail-latency target"),
    }
}
