//! A tour of the lock zoo: run every lock implementation through the
//! same contended counter workload on an emulated Apple-M1 topology
//! and print per-class acquisition shares.
//!
//! This makes the paper's §2.2 observations tangible in one screen:
//! FIFO locks split acquisitions evenly (and are slow on AMP), the
//! big-core-affinity TAS starves little cores, SHFL-PB10 gives big
//! cores a fixed multiple, and LibASL-MAX batches big cores while
//! keeping little cores alive.
//!
//! ```sh
//! cargo run --release --example lock_zoo_tour
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use libasl::harness::locks::LockSpec;
use libasl::runtime::spawn::run_on_topology_with_stop;
use libasl::runtime::work::execute_units;
use libasl::runtime::{AtomicAffinity, CacheLineArena, CoreKind, Topology};

fn main() {
    let topo = Topology::apple_m1();
    println!(
        "topology: {} ({} big + {} little, ratio {:.1}x)\n",
        topo.name(),
        topo.big_count(),
        topo.little_count(),
        topo.perf_ratio()
    );
    println!(
        "{:<16} {:>12} {:>10} {:>10} {:>8}",
        "lock", "ops/s", "big_ops", "little_ops", "big%"
    );

    let specs = [
        LockSpec::Mcs,
        LockSpec::Ticket,
        LockSpec::Tas(AtomicAffinity::big_wins()),
        LockSpec::Tas(AtomicAffinity::little_wins()),
        LockSpec::Pthread,
        LockSpec::ShflPb(10),
        LockSpec::Cna,
        LockSpec::Cohort,
        LockSpec::Malthusian(None),
        LockSpec::ShuffleClassLocal { max_skips: 16 },
        LockSpec::asl(None),
    ];

    for spec in &specs {
        let (thpt, big, little) = measure(&topo, spec);
        let share = 100.0 * big as f64 / (big + little).max(1) as f64;
        let label = match spec {
            LockSpec::Tas(a) if *a == AtomicAffinity::big_wins() => "tas(big-aff)".into(),
            LockSpec::Tas(_) => "tas(little-aff)".into(),
            other => other.label(),
        };
        println!("{label:<16} {thpt:>12.0} {big:>10} {little:>10} {share:>7.1}%");
    }

    println!(
        "\nReading guide: FIFO locks sit near 50% big share (throughput collapse);\n\
         big-affinity TAS and LibASL-MAX sit high (throughput recovered), but only\n\
         LibASL does it without unbounded latency — see `repro fig8a`."
    );
}

/// Run one lock spec for 300 ms of contended counting; returns
/// (ops/s, big ops, little ops).
fn measure(topo: &Topology, spec: &LockSpec) -> (f64, u64, u64) {
    let lock = spec.make_dyn();
    let arena = Arc::new(CacheLineArena::new(4));
    let big_ops = Arc::new(AtomicU64::new(0));
    let little_ops = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let stopper = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            stop.store(true, Ordering::Relaxed);
        })
    };

    let t0 = std::time::Instant::now();
    run_on_topology_with_stop(topo, topo.len(), false, stop.clone(), |ctx| {
        let ctr = if ctx.assignment.kind == CoreKind::Big {
            &big_ops
        } else {
            &little_ops
        };
        while !ctx.stopped() {
            {
                let _held = lock.lock(); // RAII guard: released at scope end
                arena.rmw(0, 4);
                execute_units(120);
            }
            ctr.fetch_add(1, Ordering::Relaxed);
            execute_units(400);
        }
    });
    let dt = t0.elapsed().as_secs_f64();
    stopper.join().unwrap();

    let b = big_ops.load(Ordering::Relaxed);
    let l = little_ops.load(Ordering::Relaxed);
    ((b + l) as f64 / dt, b, l)
}
