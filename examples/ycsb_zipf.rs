//! YCSB-style skewed workloads against the Kyoto-like engine.
//!
//! The paper's DB benchmarks use a uniform 50/50 put-get mix
//! ("referring to YCSB-A"). Real YCSB defaults to a zipfian key
//! distribution — skew concentrates traffic on a few hash slots,
//! which raises slot-lock contention and therefore widens the gap
//! between lock designs. This example drives the engine with
//! YCSB-A/B/C under uniform and zipfian keys, under MCS vs LibASL-MAX.
//!
//! ```sh
//! cargo run --release --example ycsb_zipf
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use libasl::dbsim::workload::{KeyDist, Mix, Op, Zipfian};
use libasl::dbsim::{kyoto::Kyoto, value_for, LockFactory, KEYSPACE};
use libasl::harness::locks::LockSpec;
use libasl::locks::plain::PlainLock;
use libasl::runtime::spawn::run_on_topology_with_stop;
use libasl::Topology;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let topo = Topology::apple_m1();
    println!(
        "{:<10} {:<9} {:<12} {:>12} {:>12}",
        "workload", "keys", "", "mcs ops/s", "libasl ops/s"
    );
    for (mix_name, mix) in [
        ("YCSB-A", Mix::ycsb_a()),
        ("YCSB-B", Mix::ycsb_b()),
        ("YCSB-C", Mix::ycsb_c()),
    ] {
        for (dist_name, dist) in [
            ("uniform", KeyDist::Uniform { n: KEYSPACE }),
            ("zipfian", KeyDist::Zipfian(Zipfian::ycsb(KEYSPACE))),
        ] {
            let mcs = run_once(&topo, &LockSpec::Mcs, mix, &dist);
            let asl = run_once(&topo, &LockSpec::asl(None), mix, &dist);
            println!(
                "{:<10} {:<9} {:<12} {:>12.0} {:>12.0}",
                mix_name, dist_name, "", mcs, asl
            );
        }
    }
    println!("\nZipfian skew concentrates slot-lock traffic; the LibASL gap widens with it.");
}

fn run_once(topo: &Topology, spec: &LockSpec, mix: Mix, dist: &KeyDist) -> f64 {
    let lock_for_engine = {
        let spec = spec.clone();
        move || -> Arc<dyn PlainLock> { spec.make_lock() }
    };
    let db = Arc::new(Kyoto::with_default_size(
        &lock_for_engine as &dyn LockFactory,
    ));

    // Preload half the key space so reads hit.
    for k in 0..KEYSPACE / 2 {
        db.put(k * 2, value_for(k * 2));
    }

    let ops = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let stopper = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(250));
            stop.store(true, Ordering::Relaxed);
        })
    };
    let t0 = std::time::Instant::now();
    {
        let db = db.clone();
        let ops = ops.clone();
        run_on_topology_with_stop(topo, topo.len(), false, stop, move |ctx| {
            let mut rng = SmallRng::seed_from_u64(0xC0FFEE + ctx.index as u64);
            while !ctx.stopped() {
                let key = dist.sample(&mut rng);
                match mix.sample(&mut rng) {
                    Op::Read => {
                        let _ = db.get(key);
                    }
                    Op::Update => db.put(key, value_for(key)),
                }
                ops.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
    let dt = t0.elapsed().as_secs_f64();
    stopper.join().unwrap();
    ops.load(Ordering::Relaxed) as f64 / dt
}
