//! A latency-critical KV "server" (the paper's Figure 6 usage model).
//!
//! The Kyoto-Cabinet-like engine from `asl-dbsim` handles a 50/50
//! put/get request mix on an emulated M1. Each request handler is
//! wrapped in an epoch with an SLO — the only integration work LibASL
//! asks of an application. The example runs the same workload under
//! MCS and under LibASL at two SLOs, printing the familiar
//! throughput-vs-tail-latency trade.
//!
//! A second phase serves the *same policy lineup* through the async
//! path: the sharded KV store from `asl_dbsim::kv`, one async task per
//! simulated client, under open-loop Poisson traffic — thread-per-core
//! epochs and task-per-connection shard locks side by side.
//!
//! Run with: `cargo run --release --example kv_slo_server`

use std::sync::Arc;
use std::time::Duration;

use libasl::dbsim::kv::{KvConfig, ShardedKv};
use libasl::dbsim::kyoto::Kyoto;
use libasl::dbsim::openloop::{run_open_loop, OpenLoopConfig};
use libasl::dbsim::{Engine, LockFactory};
use libasl::harness::locks::LockSpec;
use libasl::harness::runner::{run_timed_with_setup, RunConfig};
use libasl::harness::Hist;
use libasl::locks::plain::PlainLock;
use libasl::runtime::Topology;

struct SpecFactory(LockSpec);
impl LockFactory for SpecFactory {
    fn make(&self) -> Arc<dyn PlainLock> {
        self.0.make_lock()
    }
}

fn serve(spec: &LockSpec) -> (f64, f64, f64) {
    let engine = Arc::new(Kyoto::with_default_size(&SpecFactory(spec.clone())));
    let cfg = RunConfig {
        topology: Topology::apple_m1(),
        threads: 8,
        duration: Duration::from_millis(500),
        warmup: Duration::from_millis(100),
        pin: true,
    };
    let slo = spec.epoch_slo();
    let engine2 = engine.clone();
    let r = run_timed_with_setup(
        &cfg,
        |ctx| {
            libasl::epoch::reset_thread_epochs();
            libasl::harness::figures::seed_tls_rng(ctx.index);
        },
        move |_| {
            let run = || libasl::harness::figures::with_tls_rng(|rng| engine2.run_request(rng));
            match slo {
                // The paper's integration: 2 lines around the handler.
                Some(slo) => libasl::epoch::with_epoch_timed(0, slo, run).1,
                None => {
                    let t0 = libasl::runtime::clock::now_ns();
                    run();
                    libasl::runtime::clock::now_ns() - t0
                }
            }
        },
    );
    (
        r.throughput,
        r.overall.p99() as f64 / 1_000.0,
        r.little.p99() as f64 / 1_000.0,
    )
}

fn main() {
    println!("kyoto-like KV store, 8 threads on emulated M1 (50% put / 50% get)\n");
    println!(
        "{:<16} {:>14} {:>16} {:>16}",
        "lock", "ops/s", "overall P99 (us)", "little P99 (us)"
    );

    // Baseline: FIFO MCS.
    let (thpt, p99, lp99) = serve(&LockSpec::Mcs);
    println!("{:<16} {:>14.0} {:>16.1} {:>16.1}", "mcs", thpt, p99, lp99);
    let anchor = (p99 * 1_000.0) as u64;

    // LibASL at a tight and a loose SLO (anchored on the MCS tail).
    for (label, slo) in [
        ("libasl (tight)", anchor * 3 / 2),
        ("libasl (loose)", anchor * 4),
    ] {
        let (thpt, p99, lp99) = serve(&LockSpec::asl(Some(slo)));
        println!(
            "{:<16} {:>14.0} {:>16.1} {:>16.1}   (SLO {} us)",
            label,
            thpt,
            p99,
            lp99,
            slo / 1_000
        );
    }

    // LibASL-MAX: throughput first, latency unconstrained.
    let (thpt, p99, lp99) = serve(&LockSpec::asl(None));
    println!(
        "{:<16} {:>14.0} {:>16.1} {:>16.1}",
        "libasl-max", thpt, p99, lp99
    );

    println!("\nexpected shape: LibASL trades little-core tail latency (up to its SLO)");
    println!("for throughput; the loose SLO should approach libasl-max throughput.");

    // ---- Async path: the same policies as shard locks of an
    // open-loop KV service (task-per-connection serving model).
    println!(
        "\nasync sharded KV service, 50k simulated clients at 250k req/s (4 shards, 4 workers)\n"
    );
    println!(
        "{:<16} {:>14} {:>12} {:>12}",
        "shard lock", "ops/s", "P99 (us)", "P99.9 (us)"
    );
    for (label, spec) in [
        ("mcs (fifo)", LockSpec::Mcs),
        ("libasl-100us", LockSpec::asl(Some(100_000))),
        ("libasl-max", LockSpec::asl(None)),
    ] {
        let (thpt, p99, p999) = serve_async(&spec);
        println!("{label:<16} {thpt:>14.0} {p99:>12.1} {p999:>12.1}");
    }

    println!("\nexpected shape: deadline-ordered wake-ups (libasl-*) cut the p99.9 that");
    println!("FIFO poll-order handoff leaves on the table; latency counts from each");
    println!("request's scheduled arrival, so nothing hides behind a slow generator.");
}

/// Serve the open-loop KV workload with `spec`'s policy on every
/// shard lock; returns (ops/s, p99 µs, p99.9 µs).
fn serve_async(spec: &LockSpec) -> (f64, f64, f64) {
    let kv = Arc::new(ShardedKv::new(KvConfig {
        shards: 4,
        policy: spec.async_policy(),
        cs_units: libasl::runtime::work::units_for_ns(1_500),
        ..KvConfig::default()
    }));
    kv.prefill(1);
    let report = run_open_loop(
        kv,
        &OpenLoopConfig {
            clients: 50_000,
            rate_per_sec: 250_000.0,
            slo_ns: Some(100_000),
            workers: 4,
            ..OpenLoopConfig::default()
        },
    );
    let mut hist = Hist::new();
    for &l in &report.latencies_ns {
        hist.record(l);
    }
    (
        report.throughput,
        hist.p99() as f64 / 1_000.0,
        hist.p999() as f64 / 1_000.0,
    )
}
