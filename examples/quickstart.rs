//! Quickstart: LibASL as a drop-in mutex on an emulated Apple M1.
//!
//! Eight worker threads (4 big, 4 little) hammer one shared counter.
//! Each increment runs inside an epoch with a 200 µs SLO — LibASL
//! lets big cores overtake little cores exactly as much as that SLO
//! allows, then prints the per-class acquisition shares and tail
//! latencies.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use libasl::epoch;
use libasl::runtime::clock::now_ns;
use libasl::runtime::spawn::run_on_topology_with_stop;
use libasl::runtime::work::execute_units;
use libasl::{CoreKind, Mutex, Topology};

const SLO_NS: u64 = 200_000; // 200 µs, P99

fn main() {
    let topology = Topology::apple_m1();
    println!(
        "topology: {} ({} big + {} little, little {}x slower)",
        topology.name(),
        topology.big_count(),
        topology.little_count(),
        topology.perf_ratio()
    );

    let counter = Arc::new(Mutex::new(0u64));
    let stop = Arc::new(AtomicBool::new(false));

    // Stop the experiment after one second.
    let stopper = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_secs(1));
            stop.store(true, Ordering::Relaxed);
        })
    };

    let counter2 = counter.clone();
    let results = run_on_topology_with_stop(&topology, 8, true, stop, move |ctx| {
        let mut ops = 0u64;
        let mut worst = 0u64;
        while !ctx.stopped() {
            // One latency-critical request: epoch 0, 200 µs SLO.
            let (_, latency) = epoch::with_epoch_timed(0, SLO_NS, || {
                let mut guard = counter2.lock();
                *guard += 1;
                // Some work while holding the lock (slower on littles).
                execute_units(300);
            });
            worst = worst.max(latency);
            ops += 1;
            execute_units(500); // think time between requests
        }
        (ctx.assignment.kind, ops, worst)
    });
    stopper.join().unwrap();

    let total: u64 = results.iter().map(|(_, ops, _)| ops).sum();
    println!(
        "\ntotal increments: {total} (counter = {})",
        *counter.lock()
    );
    for kind in [CoreKind::Big, CoreKind::Little] {
        let class: Vec<_> = results.iter().filter(|(k, _, _)| *k == kind).collect();
        let ops: u64 = class.iter().map(|(_, o, _)| o).sum();
        let worst = class.iter().map(|(_, _, w)| *w).max().unwrap_or(0);
        println!(
            "  {:>6}: {:>9} ops ({:>4.1}%), worst epoch latency {:.1} us (SLO {} us)",
            kind.label(),
            ops,
            100.0 * ops as f64 / total as f64,
            worst as f64 / 1_000.0,
            SLO_NS / 1_000,
        );
    }

    let s = counter.stats().snapshot();
    println!(
        "\nlock paths: {} immediate (big), {} standby-free, {} standby-reordered, {} window-expired",
        s.immediate, s.standby_free_entry, s.standby_observed_free, s.standby_expired
    );
    let _ = now_ns();
    println!("done.");
}
