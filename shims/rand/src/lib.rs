//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crates.io access. This shim provides
//! exactly what the workspace uses — `rngs::SmallRng`, the `Rng` and
//! `SeedableRng` traits, `gen`/`gen_bool`/`gen_range` over the
//! numeric types the workloads draw — backed by xoshiro256++ with a
//! SplitMix64 seeder (the same generator family the real `SmallRng`
//! uses on 64-bit targets). Statistical quality is more than adequate
//! for workload generation; this is not a cryptographic RNG.

use std::ops::{Range, RangeInclusive};

/// Low-level RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Deterministic seeding (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The per-generator seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via SplitMix64 expansion (matches the
    /// real rand's documented behaviour for non-crypto PRNGs).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::gen_standard(self)
    }

    /// `true` with probability `p` (panics unless `0 <= p <= 1`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::gen_standard(self) < p
    }

    /// Uniform draw from a (half-open or inclusive) range.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types drawable uniformly from their "standard" distribution
/// (stands in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draw one value.
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for i8 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i8
    }
}
impl Standard for i16 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i16
    }
}
impl Standard for i32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for i64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for isize {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as isize
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges `gen_range` accepts (stands in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_u64(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return <$t as Standard>::gen_standard(rng);
                }
                (lo as $wide).wrapping_add(uniform_u64(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::gen_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f32::gen_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Unbiased `[0, span)` draw (Lemire-style widening multiply with
/// rejection); `span == 0` means the full `u64` domain.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Rejection threshold for exact uniformity.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = widening_mul(v, span);
        if lo <= zone {
            return hi;
        }
    }
}

#[inline]
fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

pub mod rngs {
    //! Named generators (subset of `rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator the real `SmallRng`
    /// wraps on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    /// Alias: the workspace does not need a crypto-grade generator.
    pub type StdRng = SmallRng;
}

/// `rand::prelude` subset.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1u32..=4);
            assert!((1..=4).contains(&w));
            let f = r.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_rate() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
