//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this shim keeps
//! the workspace's bench targets compiling and runnable with the same
//! source: `criterion_group!`/`criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`/`iter_custom`, `BenchmarkId`,
//! `Throughput`. Instead of criterion's statistical engine it runs a
//! small fixed number of samples and prints mean time per iteration —
//! enough to smoke the benches and get ballpark numbers. Passing
//! `--test` (as `cargo test` does for harness-less bench targets)
//! runs every benchmark once with a single iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier (subset of criterion's `BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            repr: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { repr: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Throughput annotation (recorded, reported as elements/sec).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-benchmark timing driver.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    /// Mean nanoseconds per iteration over all samples.
    mean_ns: f64,
}

impl Bencher {
    /// Time `f` over a batch of iterations per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let iters: u64 = if self.test_mode { 1 } else { 1_000 };
        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            total += start.elapsed();
            total_iters += iters;
        }
        self.mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    }

    /// `f` receives an iteration count and returns the measured time
    /// for exactly that many iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let iters: u64 = if self.test_mode { 1 } else { 64 };
        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            total += f(iters);
            total_iters += iters;
        }
        self.mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples (clamped low in this shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Warm-up budget (ignored by this shim).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Measurement budget (ignored by this shim).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, self.throughput, f);
        self
    }

    /// End the group (no-op; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver (subset of criterion's `Criterion`).
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        // cargo passes `--test` when running harness-less bench
        // targets under `cargo test`; a bare string argument filters.
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                s if !s.starts_with('-') => filter = Some(s.to_string()),
                _ => {}
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Final-call hook for API parity with the real crate.
    pub fn final_summary(&mut self) {}

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().to_string();
        self.run_one(&id, None, f);
        self
    }

    fn run_one<F>(&mut self, id: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            samples: if self.test_mode { 1 } else { 3 },
            mean_ns: 0.0,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {id} ... ok");
            return;
        }
        let per_iter = b.mean_ns;
        match throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                let rate = n as f64 * 1e9 / per_iter;
                println!("{id:<60} {per_iter:>12.1} ns/iter {rate:>14.0} elem/s");
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                let rate = n as f64 * 1e9 / per_iter;
                println!("{id:<60} {per_iter:>12.1} ns/iter {rate:>14.0} B/s");
            }
            _ => println!("{id:<60} {per_iter:>12.1} ns/iter"),
        }
    }
}

/// Opaque-to-the-optimizer value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_measures() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_chain_compiles_and_runs() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1))
            .throughput(Throughput::Elements(1));
        let mut hits = 0u64;
        g.bench_function(BenchmarkId::from_parameter("x"), |b| {
            b.iter_custom(|iters| {
                hits += iters;
                Duration::from_nanos(iters)
            })
        });
        g.finish();
        assert!(hits > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("zzz".into()),
        };
        let mut ran = false;
        c.bench_function("abc", |b| {
            ran = true;
            b.iter(|| ())
        });
        assert!(!ran);
    }
}
