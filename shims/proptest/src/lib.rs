//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access. This shim keeps the
//! workspace's property tests source-compatible: the `proptest!`
//! macro, range / tuple / `collection::vec` / `any::<T>()` strategies
//! and `prop_assert*` macros. Inputs are drawn from a deterministic
//! per-test RNG (seeded from the test's module path), so failures
//! reproduce across runs. Unlike real proptest there is **no
//! shrinking**: a failing case panics with the raw inputs via the
//! normal assert message.

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, SampleRange, SeedableRng};

pub mod strategy {
    //! The [`Strategy`] trait and primitive strategy impls.

    use super::*;

    /// A recipe for generating values (no shrinking in this shim).
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;
    }

    impl<T> Strategy for Range<T>
    where
        Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn sample(&self, rng: &mut SmallRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// Strategy returned by [`any`](crate::arbitrary::any).
    pub struct AnyStrategy<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<T: crate::arbitrary::ArbitrarySample> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A fixed value as a degenerate strategy.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitives.

    use super::*;

    /// Types with a canonical "any value" distribution.
    pub trait ArbitrarySample: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! arb_prim {
        ($($t:ty => $e:expr),* $(,)?) => {$(
            impl ArbitrarySample for $t {
                fn arbitrary(rng: &mut SmallRng) -> Self {
                    let f: fn(&mut SmallRng) -> $t = $e;
                    f(rng)
                }
            }
        )*};
    }

    arb_prim!(
        bool => |r| r.gen::<u32>() & 1 == 1,
        u8 => |r| r.gen::<u32>() as u8,
        u16 => |r| r.gen::<u32>() as u16,
        u32 => |r| r.gen(),
        u64 => |r| r.gen(),
        usize => |r| r.gen::<u64>() as usize,
        i8 => |r| r.gen::<u32>() as i8,
        i16 => |r| r.gen::<u32>() as i16,
        i32 => |r| r.gen::<u32>() as i32,
        i64 => |r| r.gen::<u64>() as i64,
        isize => |r| r.gen::<u64>() as isize,
        f64 => |r| r.gen(),
        f32 => |r| r.gen(),
    );

    /// Strategy producing any value of `T`.
    pub fn any<T: ArbitrarySample>() -> crate::strategy::AnyStrategy<T> {
        crate::strategy::AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: lengths in `size`, elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test configuration and the deterministic case RNG.

    use super::*;

    /// Subset of proptest's `ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Run `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-test RNG: seeded from the test's full path so
    /// every run draws the same case sequence.
    pub fn rng_for_test(test_path: &str) -> SmallRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SmallRng::seed_from_u64(h)
    }
}

/// Alias module so `prop::collection::vec(..)` works as under the
/// real prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! Mirror of `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property (panics with the case's inputs visible in
/// the assert message; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The `proptest!` test-definition macro (subset: optional
/// `#![proptest_config(..)]` header plus `#[test] fn name(pat in
/// strategy, ..) { body }` items).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat_param in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::rng_for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..cfg.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default()); $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1u64..100, f in 0.5f64..2.0) {
            prop_assert!((1..100).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_vecs(
            pairs in prop::collection::vec((0u64..10, any::<bool>()), 1..20),
        ) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 20);
            for (k, _flag) in pairs {
                prop_assert!(k < 10);
            }
        }

        #[test]
        fn mut_patterns_work(mut v in prop::collection::vec(0u32..5, 1..10)) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..255) {
            prop_assert!(x < 255);
        }
    }

    #[test]
    fn deterministic_rng() {
        let mut a = crate::test_runner::rng_for_test("x::y");
        let mut b = crate::test_runner::rng_for_test("x::y");
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
