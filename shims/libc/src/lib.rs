//! Offline stand-in for the `libc` crate.
//!
//! The build environment has no crates.io access, so this shim
//! declares just the symbols and constants the workspace uses against
//! the system C library that `std` already links. The API is
//! signature-compatible with the real `libc` crate; swapping the
//! `[patch]` back to crates.io requires no source changes.

#![allow(non_camel_case_types, non_snake_case, non_upper_case_globals)]

use core::ffi::c_void;

pub type c_int = i32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type time_t = i64;
pub type size_t = usize;
pub type pid_t = i32;

/// `struct timespec` as used by `nanosleep(2)` / `futex(2)`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

// ---------------------------------------------------------------- futex
#[cfg(target_os = "linux")]
pub const FUTEX_WAIT: c_int = 0;
#[cfg(target_os = "linux")]
pub const FUTEX_WAKE: c_int = 1;
#[cfg(target_os = "linux")]
pub const FUTEX_PRIVATE_FLAG: c_int = 128;

/// `__NR_futex` for the compiled architecture.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub const SYS_futex: c_long = 202;
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
pub const SYS_futex: c_long = 98;
#[cfg(all(
    target_os = "linux",
    not(any(target_arch = "x86_64", target_arch = "aarch64"))
))]
pub const SYS_futex: c_long = 202;

// ------------------------------------------------------------- affinity
#[cfg(target_os = "linux")]
pub const CPU_SETSIZE: c_int = 1024;

/// `cpu_set_t`: a 1024-bit CPU mask (128 bytes, as in glibc).
#[cfg(target_os = "linux")]
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct cpu_set_t {
    pub bits: [u64; 16],
}

/// glibc's `CPU_ZERO` macro.
#[cfg(target_os = "linux")]
#[allow(clippy::missing_safety_doc)]
pub fn CPU_ZERO(set: &mut cpu_set_t) {
    set.bits = [0; 16];
}

/// glibc's `CPU_SET` macro.
#[cfg(target_os = "linux")]
pub fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE as usize {
        set.bits[cpu / 64] |= 1u64 << (cpu % 64);
    }
}

/// glibc's `CPU_ISSET` macro.
#[cfg(target_os = "linux")]
pub fn CPU_ISSET(cpu: usize, set: &cpu_set_t) -> bool {
    cpu < CPU_SETSIZE as usize && set.bits[cpu / 64] & (1u64 << (cpu % 64)) != 0
}

extern "C" {
    pub fn syscall(num: c_long, ...) -> c_long;
    pub fn nanosleep(req: *const timespec, rem: *mut timespec) -> c_int;
    pub fn sysconf(name: c_int) -> c_long;
}

#[cfg(target_os = "linux")]
extern "C" {
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, mask: *const cpu_set_t) -> c_int;
    pub fn sched_getaffinity(pid: pid_t, cpusetsize: size_t, mask: *mut cpu_set_t) -> c_int;
    pub fn sched_getcpu() -> c_int;
}

pub const _SC_NPROCESSORS_ONLN: c_int = 84;

// Re-exported so `atom as *const AtomicU32` pointer casts type-check
// against the real libc's loose `*const c_void` parameters.
pub type void_ptr = *const c_void;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanosleep_links_and_returns() {
        let req = timespec {
            tv_sec: 0,
            tv_nsec: 100_000,
        };
        let rc = unsafe { nanosleep(&req, core::ptr::null_mut()) };
        assert_eq!(rc, 0);
    }

    #[test]
    fn sysconf_reports_cpus() {
        let n = unsafe { sysconf(_SC_NPROCESSORS_ONLN) };
        assert!(n >= 1, "sysconf returned {n}");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn cpu_set_roundtrip() {
        let mut set = cpu_set_t { bits: [0; 16] };
        CPU_ZERO(&mut set);
        CPU_SET(3, &mut set);
        assert!(CPU_ISSET(3, &set));
        assert!(!CPU_ISSET(4, &set));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn futex_syscall_mismatch_returns_immediately() {
        use core::sync::atomic::AtomicU32;
        let a = AtomicU32::new(7);
        // EAGAIN path: value != expected, must not block.
        let rc = unsafe {
            syscall(
                SYS_futex,
                &a as *const AtomicU32,
                FUTEX_WAIT | FUTEX_PRIVATE_FLAG,
                0u32,
                core::ptr::null::<timespec>(),
            )
        };
        assert_eq!(rc, -1);
    }
}
