//! Cross-crate integration: LibASL end-to-end behaviour on real
//! threads over the emulated AMP.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use libasl::core::config;
use libasl::epoch;
use libasl::locks::RawLock;
use libasl::runtime::spawn::run_on_topology_with_stop;
use libasl::runtime::work::execute_units;
use libasl::runtime::{CoreKind, Topology};
use libasl::{AslSpinLock, Mutex};

fn timed_stop(ms: u64) -> (Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let stop = Arc::new(AtomicBool::new(false));
    let s2 = stop.clone();
    let h = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(ms));
        s2.store(true, Ordering::Relaxed);
    });
    (stop, h)
}

#[test]
fn facade_mutex_counts_correctly_across_classes() {
    let topo = Topology::apple_m1();
    let m = Arc::new(Mutex::new(0u64));
    let m2 = m.clone();
    let per_thread = 5_000u64;
    run_on_topology_with_stop(
        &topo,
        8,
        false,
        Arc::new(AtomicBool::new(false)),
        move |_ctx| {
            for _ in 0..per_thread {
                *m2.lock() += 1;
            }
        },
    );
    assert_eq!(*m.lock(), 8 * per_thread);
}

#[test]
fn big_cores_win_more_acquisitions_under_contention() {
    // With maximum reordering (no epochs), big cores should complete
    // clearly more critical sections than little cores.
    let topo = Topology::custom(4, 4, 3.0);
    let lock = Arc::new(AslSpinLock::default());
    let big_ops = Arc::new(AtomicU64::new(0));
    let little_ops = Arc::new(AtomicU64::new(0));
    let (stop, stopper) = timed_stop(400);
    {
        let lock = lock.clone();
        let big_ops = big_ops.clone();
        let little_ops = little_ops.clone();
        run_on_topology_with_stop(&topo, 8, false, stop, move |ctx| {
            epoch::reset_thread_epochs();
            let ctr = if ctx.assignment.kind == CoreKind::Big {
                &big_ops
            } else {
                &little_ops
            };
            while !ctx.stopped() {
                let t = lock.lock();
                execute_units(400); // contended critical section
                lock.unlock(t);
                ctr.fetch_add(1, Ordering::Relaxed);
                execute_units(100);
            }
        });
    }
    stopper.join().unwrap();
    let b = big_ops.load(Ordering::Relaxed);
    let l = little_ops.load(Ordering::Relaxed);
    assert!(
        l > 0,
        "no starvation: little cores must progress (bound = max window)"
    );
    assert!(
        b > l * 2,
        "expected strong big-core priority, got big={b} little={l}"
    );

    let s = lock.stats().snapshot();
    assert!(s.immediate > 0, "big cores use the immediate path");
    assert!(s.standby_total() > 0, "little cores use the standby path");
}

#[test]
fn zero_slo_behaves_like_fifo() {
    // With SLO 0 every epoch violates, windows collapse to zero, and
    // the acquisition split approaches the FIFO lock's.
    let topo = Topology::custom(4, 4, 3.0);

    let run = |use_asl: bool| -> (u64, u64) {
        let asl = Arc::new(AslSpinLock::default());
        let mcs = Arc::new(libasl::locks::McsLock::new());
        let big_ops = Arc::new(AtomicU64::new(0));
        let little_ops = Arc::new(AtomicU64::new(0));
        let (stop, stopper) = timed_stop(300);
        {
            let asl = asl.clone();
            let mcs = mcs.clone();
            let big_ops = big_ops.clone();
            let little_ops = little_ops.clone();
            run_on_topology_with_stop(&topo, 8, false, stop, move |ctx| {
                epoch::reset_thread_epochs();
                let ctr = if ctx.assignment.kind == CoreKind::Big {
                    &big_ops
                } else {
                    &little_ops
                };
                while !ctx.stopped() {
                    if use_asl {
                        epoch::epoch_start(0);
                        let t = asl.lock();
                        execute_units(400);
                        asl.unlock(t);
                        epoch::epoch_end(0, 0); // SLO 0: always violated
                    } else {
                        let t = mcs.lock();
                        execute_units(400);
                        mcs.unlock(t);
                    }
                    ctr.fetch_add(1, Ordering::Relaxed);
                    execute_units(100);
                }
            });
        }
        stopper.join().unwrap();
        (
            big_ops.load(Ordering::Relaxed),
            little_ops.load(Ordering::Relaxed),
        )
    };

    let (asl_big, asl_little) = run(true);
    let (mcs_big, mcs_little) = run(false);
    let asl_share = asl_big as f64 / (asl_big + asl_little) as f64;
    let mcs_share = mcs_big as f64 / (mcs_big + mcs_little) as f64;
    assert!(
        (asl_share - mcs_share).abs() < 0.25,
        "SLO-0 LibASL big-share {asl_share:.2} should be near FIFO's {mcs_share:.2}"
    );
}

#[test]
fn nested_epochs_inner_priority() {
    // §3.4: nested epochs — the inner epoch's window is the one the
    // dispatch layer consults.
    let topo = Topology::apple_m1();
    let (stop, stopper) = timed_stop(50);
    run_on_topology_with_stop(&topo, 8, false, stop, |ctx| {
        if ctx.assignment.kind != CoreKind::Little {
            return;
        }
        epoch::reset_thread_epochs();
        epoch::set_epoch_window(1, 111);
        epoch::set_epoch_window(2, 222);
        epoch::epoch_start(1);
        assert_eq!(epoch::current_window(), Some(111));
        epoch::epoch_start(2);
        assert_eq!(epoch::current_window(), Some(222), "inner epoch wins");
        epoch::epoch_end(2, u64::MAX);
        assert_eq!(epoch::current_window(), Some(111), "outer restored");
        epoch::epoch_end(1, u64::MAX);
        assert_eq!(epoch::current_window(), None);
    });
    stopper.join().unwrap();
}

#[test]
fn config_pct_affects_growth_unit() {
    // Runs in its own process would be cleaner, but serializing via a
    // lock keeps the global PCT change contained.
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _g = GUARD.lock().unwrap();

    let topo = Topology::apple_m1();
    let (stop, stopper) = timed_stop(50);
    run_on_topology_with_stop(&topo, 8, false, stop, |ctx| {
        if ctx.assignment.kind != CoreKind::Little || ctx.index != 4 {
            return;
        }
        config::set_pct(95);
        epoch::reset_thread_epochs();
        epoch::set_epoch_window(3, 100_000);
        epoch::epoch_start(3);
        epoch::epoch_end(3, 0); // violation: window 50_000, unit 5% = 2_500
        let m = epoch::epoch_meta(3);
        assert_eq!(m.window, 50_000);
        assert_eq!(m.unit, 2_500);
        config::set_pct(99);
    });
    stopper.join().unwrap();
}

#[test]
fn reorderable_lock_starvation_bound_holds_under_load() {
    // A little-core thread with the max window must still acquire
    // within (roughly) max_window + queue drain time even under
    // constant big-core pressure.
    let topo = Topology::custom(4, 4, 3.0);
    config::set_max_window_ns(5_000_000); // 5 ms bound for the test
    let lock = Arc::new(AslSpinLock::default());
    let little_max_wait = Arc::new(AtomicU64::new(0));
    let (stop, stopper) = timed_stop(400);
    {
        let lock = lock.clone();
        let little_max_wait = little_max_wait.clone();
        run_on_topology_with_stop(&topo, 8, false, stop, move |ctx| {
            epoch::reset_thread_epochs();
            while !ctx.stopped() {
                let t0 = libasl::runtime::clock::now_ns();
                let t = lock.lock();
                execute_units(300);
                lock.unlock(t);
                let waited = libasl::runtime::clock::now_ns() - t0;
                if ctx.assignment.kind == CoreKind::Little {
                    little_max_wait.fetch_max(waited, Ordering::Relaxed);
                }
            }
        });
    }
    stopper.join().unwrap();
    let worst = little_max_wait.load(Ordering::Relaxed);
    config::set_max_window_ns(100_000_000); // restore default
    assert!(worst > 0, "little cores acquired at least once");
    // The wall-clock bound (max window + queue drain) only holds when
    // the 8 threads truly run in parallel; oversubscribed, a waiter
    // can sit preempted for arbitrarily many scheduler quanta. The
    // exact, ungated bound is asserted in the simulator instead
    // (`crates/sim/tests/ungated.rs`,
    // `reorderable_starvation_bound_holds_exactly`), where virtual
    // time has no preemption accidents.
}
