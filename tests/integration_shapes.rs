//! Figure-shape assertions on the deterministic simulator plus quick
//! real-thread cross-checks of the headline claims.
//!
//! These tests encode the paper's *qualitative* results — who wins,
//! roughly by how much, where behaviour flips — so regressions in any
//! lock or in the feedback loop show up as failed shapes.

use libasl::runtime::Topology;
use libasl::sim::{run, ArrivalProcess, SimConfig, SimLockKind};

fn cfg(lock: SimLockKind) -> SimConfig {
    SimConfig {
        topology: Topology::custom(4, 4, 3.0),
        threads: 8,
        cs_ns: 2_000,
        ncs_ns: 2_000,
        duration_ns: 300_000_000,
        lock,
        slo_ns: None,
        seed: 11,
        jitter: 0.05,
        arrival: ArrivalProcess::Fixed,
    }
}

#[test]
fn fig1_shape_fifo_and_tas_collapse() {
    // Figure 1: scaling from 4 big cores to 4+4 collapses FIFO
    // throughput; little-affinity TAS is even worse on throughput and
    // collapses big-core latency.
    let mut fifo4 = cfg(SimLockKind::Fifo);
    fifo4.threads = 4;
    let f4 = run(&fifo4);
    let f8 = run(&cfg(SimLockKind::Fifo));
    let t8 = run(&cfg(SimLockKind::TasAffinity {
        big_weight: 1.0,
        little_weight: 50.0,
    }));

    assert!(f8.throughput < f4.throughput, "FIFO collapse");
    assert!(
        t8.throughput < f8.throughput * 1.05,
        "little-affinity TAS should not beat FIFO (paper: 35% worse)"
    );
    assert!(
        t8.p99_big > f8.p99_overall * 2,
        "TAS latency collapse: {} vs FIFO {}",
        t8.p99_big,
        f8.p99_overall
    );
}

#[test]
fn fig4_shape_big_affinity_tas_beats_mcs_on_throughput_only() {
    let f8 = run(&cfg(SimLockKind::Fifo));
    let t8 = run(&cfg(SimLockKind::TasAffinity {
        big_weight: 50.0,
        little_weight: 1.0,
    }));
    assert!(
        t8.throughput > f8.throughput * 1.15,
        "paper: +32% throughput; got {} vs {}",
        t8.throughput,
        f8.throughput
    );
    assert!(
        t8.p99_little > f8.p99_little * 2,
        "but little-core tail collapses"
    );
}

#[test]
fn fig5_shape_proportion_sweep_is_a_tradeoff_curve() {
    // Larger proportion => more throughput and a longer little tail,
    // monotone-ish along the sweep.
    let mut last_thpt = 0.0;
    let mut first_tail = 0;
    let mut last_tail = 0;
    for n in [0u32, 2, 8, 29] {
        let r = run(&cfg(SimLockKind::Proportional { n }));
        assert!(
            r.throughput > last_thpt * 0.95,
            "throughput should not drop along the sweep (n={n})"
        );
        last_thpt = r.throughput;
        if n == 0 {
            first_tail = r.p99_little;
        }
        last_tail = r.p99_little;
    }
    assert!(last_tail > first_tail, "tail must grow with the proportion");
}

#[test]
fn fig8b_shape_throughput_monotone_in_slo_and_tail_tracks_slo() {
    let mut prev = 0.0;
    for slo in [20_000u64, 60_000, 200_000, 1_000_000] {
        let mut c = cfg(SimLockKind::Reorderable {
            feedback: true,
            static_window_ns: None,
        });
        c.slo_ns = Some(slo);
        let r = run(&c);
        assert!(
            r.throughput >= prev * 0.97,
            "throughput should grow with SLO (slo={slo}): {} < {}",
            r.throughput,
            prev
        );
        prev = r.throughput;
        // Feedback keeps the little tail near (not wildly past) the SLO.
        assert!(
            r.p99_little <= slo.saturating_mul(14) / 10 + 10_000,
            "slo={slo}: little P99 {} too far past SLO",
            r.p99_little
        );
    }
}

#[test]
fn fig8e_shape_libasl_max_keeps_big_core_throughput() {
    let mut fifo4 = cfg(SimLockKind::Fifo);
    fifo4.threads = 4;
    let f4 = run(&fifo4);
    let asl = run(&cfg(SimLockKind::Reorderable {
        feedback: false,
        static_window_ns: Some(100_000_000),
    }));
    // Paper Fig. 8e: LibASL-MAX throughput "does not drop at all"
    // when little cores join.
    assert!(
        asl.throughput > f4.throughput * 0.85,
        "LibASL-MAX {} vs 4-big FIFO {}",
        asl.throughput,
        f4.throughput
    );
}

#[test]
fn fig8g_shape_little_cores_help_at_low_contention() {
    // At low contention (long NCS), 8 cores under LibASL beat 4 big
    // cores — the paper's 68% observation.
    let mk = |threads: usize, lock: SimLockKind, ncs: u64| {
        let mut c = cfg(lock);
        c.threads = threads;
        c.ncs_ns = ncs;
        run(&c)
    };
    let low_contention_ncs = 200_000; // 100x the CS
    let big_only = mk(4, SimLockKind::Fifo, low_contention_ncs);
    let asl_all = mk(
        8,
        SimLockKind::Reorderable {
            feedback: false,
            static_window_ns: Some(100_000_000),
        },
        low_contention_ncs,
    );
    assert!(
        asl_all.throughput > big_only.throughput * 1.3,
        "little cores should add throughput at low contention: {} vs {}",
        asl_all.throughput,
        big_only.throughput
    );

    // And at very high contention LibASL ~ matches 4-big-core FIFO.
    let big_only_hot = mk(4, SimLockKind::Fifo, 200);
    let asl_hot = mk(
        8,
        SimLockKind::Reorderable {
            feedback: false,
            static_window_ns: Some(100_000_000),
        },
        200,
    );
    let ratio = asl_hot.throughput / big_only_hot.throughput;
    assert!(
        (0.8..1.3).contains(&ratio),
        "under saturation LibASL should track MCS-4: ratio {ratio:.2}"
    );
}

#[test]
fn theoretical_speedup_bound_respected() {
    // Footnote 5: LibASL's gain over FIFO is bounded by (r+1)/2.
    let fifo = run(&cfg(SimLockKind::Fifo));
    let asl = run(&cfg(SimLockKind::Reorderable {
        feedback: false,
        static_window_ns: Some(100_000_000),
    }));
    let bound = (3.0 + 1.0) / 2.0; // perf_ratio 3.0
    let speedup = asl.throughput / fifo.throughput;
    assert!(speedup > 1.05, "LibASL must beat FIFO under contention");
    assert!(
        speedup <= bound * 1.15,
        "speedup {speedup:.2} exceeds the theoretical bound {bound:.2}"
    );
}

#[test]
fn slo_feedback_outperforms_fifo_and_respects_slo_vs_static() {
    // The feedback window should land near the best static window for
    // the same observed tail.
    let slo = 80_000u64;
    let mut fb = cfg(SimLockKind::Reorderable {
        feedback: true,
        static_window_ns: None,
    });
    fb.slo_ns = Some(slo);
    let r_fb = run(&fb);

    // Offline-optimal static window search (the paper's LibASL-OPT).
    let mut best_static = 0.0f64;
    for w in [5_000u64, 10_000, 20_000, 40_000, 80_000, 160_000] {
        let c = cfg(SimLockKind::Reorderable {
            feedback: false,
            static_window_ns: Some(w),
        });
        let r = run(&c);
        if r.p99_little <= slo * 12 / 10 {
            best_static = best_static.max(r.throughput);
        }
    }
    assert!(best_static > 0.0, "some static window must satisfy the SLO");
    // Paper Fig. 8a: feedback costs only ~6% against OPT.
    assert!(
        r_fb.throughput > best_static * 0.75,
        "feedback {} too far below static-optimal {}",
        r_fb.throughput,
        best_static
    );
}
