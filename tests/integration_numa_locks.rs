//! Cross-crate integration tests for the §2.2/§5 comparator locks
//! (CNA, cohort, Malthusian, shuffle framework, delegation) driven
//! through the public facade.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use libasl::harness::locks::LockSpec;
use libasl::locks::api::DynLock;
use libasl::locks::flatcomb::DedicatedServer;
use libasl::locks::shuffle::{PreferBigPolicy, ShuffleLock};
use libasl::runtime::clock::now_ns;
use libasl::runtime::registry::register_on_core;
use libasl::runtime::spawn::run_on_topology_with_stop;
use libasl::runtime::topology::CoreId;
use libasl::runtime::work::execute_units;
use libasl::runtime::CoreKind;
use libasl::Topology;

/// Non-atomic counter whose correctness requires mutual exclusion.
#[derive(Default)]
struct RacyCounter(std::cell::UnsafeCell<u64>);
// SAFETY: test-only; accessed under the lock under test.
unsafe impl Sync for RacyCounter {}
unsafe impl Send for RacyCounter {}

impl RacyCounter {
    fn bump(&self) {
        unsafe { *self.0.get() += 1 }
    }
    fn get(&self) -> u64 {
        unsafe { *self.0.get() }
    }
}

/// Hammer one lock spec from all 8 cores of an emulated M1.
fn hammer_spec(spec: &LockSpec, iters: u64) {
    let topo = Topology::apple_m1();
    let lock = spec.make_dyn();
    let counter = Arc::new(RacyCounter::default());
    let mut handles = vec![];
    for i in 0..8usize {
        let topo = topo.clone();
        let lock = lock.clone();
        let counter = counter.clone();
        handles.push(std::thread::spawn(move || {
            register_on_core(&topo, CoreId(i));
            for _ in 0..iters {
                let _held = lock.lock();
                counter.bump();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.get(), 8 * iters, "{} lost updates", spec.label());
    assert!(!lock.is_locked(), "{} left held", spec.label());
}

#[test]
fn cna_mutual_exclusion_mixed_classes() {
    hammer_spec(&LockSpec::Cna, 10_000);
}

#[test]
fn cohort_mutual_exclusion_mixed_classes() {
    hammer_spec(&LockSpec::Cohort, 10_000);
}

#[test]
fn malthusian_mutual_exclusion_mixed_classes() {
    hammer_spec(&LockSpec::Malthusian(None), 10_000);
}

#[test]
fn shuffle_class_local_mutual_exclusion_mixed_classes() {
    hammer_spec(&LockSpec::ShuffleClassLocal { max_skips: 8 }, 10_000);
}

#[test]
fn prefer_big_policy_skews_acquisition_share() {
    // Equal-speed classes so the *policy*, not core speed, sets the
    // share: prefer-big with a generous skip bound must give big
    // cores clearly more than half the acquisitions, without
    // starving little cores.
    let topo = Topology::custom(2, 2, 1.0);
    let lock = DynLock::of(ShuffleLock::new(PreferBigPolicy::new(64)));
    let big_ops = Arc::new(AtomicU64::new(0));
    let little_ops = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let stopper = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            stop.store(true, Ordering::Relaxed);
        })
    };
    {
        let lock = lock.clone();
        let big_ops = big_ops.clone();
        let little_ops = little_ops.clone();
        run_on_topology_with_stop(&topo, 4, false, stop, move |ctx| {
            let ctr = if ctx.assignment.kind == CoreKind::Big {
                &big_ops
            } else {
                &little_ops
            };
            while !ctx.stopped() {
                {
                    let _held = lock.lock();
                    execute_units(400);
                }
                ctr.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
    stopper.join().unwrap();
    let b = big_ops.load(Ordering::Relaxed) as f64;
    let l = little_ops.load(Ordering::Relaxed) as f64;
    assert!(l > 0.0, "little cores starved outright");
    let share = b / (b + l);
    assert!(
        share > 0.55,
        "prefer-big share only {share:.2} (big={b} little={l})"
    );
}

#[test]
fn delegation_executes_at_server_speed() {
    // One big core (server) + one very slow little core (client,
    // 50x). Delegated critical sections run on the server, so the
    // client completes its batch far faster than executing the same
    // work locally.
    let topo = Topology::custom(1, 1, 50.0);
    const OPS: u64 = 40;
    const UNITS: u64 = 20_000;

    let srv = Arc::new(DedicatedServer::new(0u64, |acc: &mut u64, _op: u64| {
        execute_units(UNITS);
        *acc += 1;
        *acc
    }));
    let server_thread = {
        let srv = srv.clone();
        let topo = topo.clone();
        std::thread::spawn(move || {
            register_on_core(&topo, CoreId(0)); // big: executes fast
            srv.serve();
        })
    };

    let handle = srv.register();
    let delegated_ns = {
        let topo = topo.clone();
        std::thread::spawn(move || {
            register_on_core(&topo, CoreId(1)); // little client
            let t0 = now_ns();
            for _ in 0..OPS {
                handle.apply(0);
            }
            now_ns() - t0
        })
        .join()
        .unwrap()
    };

    let local_ns = {
        let topo = topo.clone();
        std::thread::spawn(move || {
            register_on_core(&topo, CoreId(1)); // little, executing locally
            let t0 = now_ns();
            for _ in 0..OPS {
                execute_units(UNITS);
            }
            now_ns() - t0
        })
        .join()
        .unwrap()
    };

    srv.shutdown();
    server_thread.join().unwrap();

    assert!(
        delegated_ns * 5 < local_ns,
        "delegation did not run at server speed: delegated {delegated_ns}ns vs local {local_ns}ns"
    );
}

#[test]
fn new_specs_have_distinct_labels() {
    let labels = [
        LockSpec::Cna.label(),
        LockSpec::Cohort.label(),
        LockSpec::Malthusian(None).label(),
        LockSpec::ShuffleClassLocal { max_skips: 16 }.label(),
    ];
    let mut sorted = labels.to_vec();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), labels.len());
    assert_eq!(
        LockSpec::ShuffleClassLocal { max_skips: 16 }.label(),
        "shfl-local16"
    );
}
