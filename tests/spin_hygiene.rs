//! Busy-wait hygiene audit.
//!
//! PR 1 convention: every busy-wait loop in the workspace goes
//! through `asl_runtime::relax::Spin`, which yields on single-CPU /
//! oversubscribed hosts so lock hand-offs don't burn scheduler
//! quanta. A raw `spin_loop()` hint in a wait loop silently
//! reintroduces the 500x CI slowdown that motivated it — so this test
//! greps the source tree and fails if one sneaks in outside the
//! explicit allowlist.

use std::path::{Path, PathBuf};

/// Files allowed to call `spin_loop` directly:
/// * `relax.rs` *is* the Spin implementation;
/// * `blocking.rs` uses bounded pre-park spin phases (fixed iteration
///   counts before a futex wait, not open-ended waits);
/// * this audit names the pattern it greps for.
const ALLOWED: &[&str] = &[
    "crates/runtime/src/relax.rs",
    "crates/locks/src/blocking.rs",
    "tests/spin_hygiene.rs",
];

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable source tree") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn raw_spin_loop_hints_only_in_allowlisted_files() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut sources = Vec::new();
    for dir in ["crates", "src", "examples", "tests"] {
        rust_sources(&root.join(dir), &mut sources);
    }
    assert!(
        sources.len() > 50,
        "source walk looks broken: {} files",
        sources.len()
    );

    let mut offenders = Vec::new();
    for path in &sources {
        let rel = path
            .strip_prefix(root)
            .unwrap()
            .to_string_lossy()
            .replace('\\', "/");
        if ALLOWED.contains(&rel.as_str()) {
            continue;
        }
        let text = std::fs::read_to_string(path).expect("readable source file");
        for (i, line) in text.lines().enumerate() {
            if line.contains("spin_loop") {
                offenders.push(format!("{rel}:{}: {}", i + 1, line.trim()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "raw spin_loop hint outside the allowlist — use asl_runtime::relax::Spin \
         (yields under oversubscription) instead:\n{}",
        offenders.join("\n")
    );
}

// ---------------------------------------------------------------------------
// Clock hygiene: the hot-path latency overhaul's invariants.
//
// The paper budgets ~45 cycles per `clock_gettime` and spends them
// sparingly; our convention after the overhaul is that *spin waiter
// loops never read the precise clock* — deadline checks ride
// `asl_runtime::clock::coarse_now_ns`'s amortized per-thread cache —
// and `ReorderableLock::lock_reorder` anchors everything on a single
// precise read per acquisition. A stray `now_ns()` in those regions
// silently reintroduces a clock read per spin iteration, so these
// grep-style audits pin the source down.
// ---------------------------------------------------------------------------

/// The file's code before its `#[cfg(test)]` module.
fn non_test_source(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    let text = std::fs::read_to_string(&path).expect("readable source file");
    text.split("#[cfg(test)]")
        .next()
        .expect("non-empty")
        .to_string()
}

/// The slice from `needle` to the next top-level `impl` (or EOF).
fn block_after<'a>(src: &'a str, needle: &str) -> &'a str {
    let start = src
        .find(needle)
        .unwrap_or_else(|| panic!("{needle:?} not found — hygiene audit is stale"));
    let rest = &src[start..];
    match rest[needle.len()..].find("\nimpl ") {
        Some(end) => &rest[..needle.len() + end],
        None => rest,
    }
}

/// Occurrences of precise `now_ns(` calls (excluding `coarse_now_ns(`).
fn precise_clock_reads(src: &str) -> usize {
    src.matches("now_ns(").count() - src.matches("coarse_now_ns(").count()
}

#[test]
fn spin_wait_policies_read_only_the_coarse_clock() {
    let src = non_test_source("crates/core/src/wait.rs");
    for policy in ["SpinWait", "FixedCheckWait"] {
        let body = block_after(&src, &format!("impl WaitPolicy for {policy}"));
        assert_eq!(
            precise_clock_reads(body),
            0,
            "{policy}'s waiter loop must check deadlines via coarse_now_ns \
             (a precise now_ns per iteration is the regression this audit exists for):\n{body}"
        );
    }
}

#[test]
fn lock_reorder_precise_clock_budget() {
    // Acceptance invariant: with sampling off (production), at most
    // one precise `now_ns()` call per standby acquisition — the
    // deadline anchor. The source budget is exactly four occurrences:
    // that anchor plus three sampling-gated wait-measurement reads
    // (free-entry start/end bracket and the contended end-read — all
    // off in production; precise because blocking in inner.lock()
    // never refreshes the coarse cache). The waiter loop itself —
    // audited separately above — performs zero precise reads.
    let src = non_test_source("crates/core/src/reorderable.rs");
    let start = src
        .find("pub fn lock_reorder")
        .expect("lock_reorder not found — hygiene audit is stale");
    let rest = &src[start..];
    let body = match rest["pub fn ".len()..].find("\n    pub fn ") {
        Some(end) => &rest[.."pub fn ".len() + end],
        None => rest,
    };
    assert_eq!(
        precise_clock_reads(body),
        4,
        "lock_reorder's clock budget is one unconditional deadline anchor \
         plus three sampling-gated measurement reads:\n{body}"
    );
    assert_eq!(
        body.matches("if sampling").count(),
        2,
        "the measurement reads must stay behind sampling gates:\n{body}"
    );
}

#[test]
fn deadline_arithmetic_is_saturating() {
    // `now + window` style sums wrap for huge windows and turn an
    // effectively-infinite deadline into an already-expired one
    // (clock::busy_wait_ns regressed on this once). This grep catches
    // the *direct-sum* form — a `now_ns()` (or `coarse_now_ns()`)
    // read and a `+` on the same line — across every non-test source
    // in the workspace. Sums over a timestamp saved in an earlier
    // statement (e.g. bravo.rs's inhibit deadline, fixed to
    // saturating_add in the same overhaul) are beyond a line grep;
    // those need review, and this audit makes no claim about them.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut sources = Vec::new();
    for dir in ["crates", "src", "examples"] {
        rust_sources(&root.join(dir), &mut sources);
    }
    let mut offenders = Vec::new();
    for path in &sources {
        let rel = path
            .strip_prefix(root)
            .unwrap()
            .to_string_lossy()
            .replace('\\', "/");
        let src = non_test_source(&rel);
        for (i, line) in src.lines().enumerate() {
            let code = line.split("//").next().unwrap_or("");
            if code.contains("now_ns() +") || (code.contains("now_ns()") && code.contains(") + ")) {
                offenders.push(format!("{rel}:{}: {}", i + 1, line.trim()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "deadline sums over a clock read must use saturating_add:\n{}",
        offenders.join("\n")
    );
}

#[test]
fn allowlist_entries_exist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for rel in ALLOWED {
        assert!(root.join(rel).is_file(), "stale allowlist entry: {rel}");
    }
}
