//! Busy-wait hygiene audit.
//!
//! PR 1 convention: every busy-wait loop in the workspace goes
//! through `asl_runtime::relax::Spin`, which yields on single-CPU /
//! oversubscribed hosts so lock hand-offs don't burn scheduler
//! quanta. A raw `spin_loop()` hint in a wait loop silently
//! reintroduces the 500x CI slowdown that motivated it — so this test
//! greps the source tree and fails if one sneaks in outside the
//! explicit allowlist.

use std::path::{Path, PathBuf};

/// Files allowed to call `spin_loop` directly:
/// * `relax.rs` *is* the Spin implementation;
/// * `blocking.rs` uses bounded pre-park spin phases (fixed iteration
///   counts before a futex wait, not open-ended waits);
/// * this audit names the pattern it greps for.
const ALLOWED: &[&str] = &[
    "crates/runtime/src/relax.rs",
    "crates/locks/src/blocking.rs",
    "tests/spin_hygiene.rs",
];

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable source tree") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn raw_spin_loop_hints_only_in_allowlisted_files() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut sources = Vec::new();
    for dir in ["crates", "src", "examples", "tests"] {
        rust_sources(&root.join(dir), &mut sources);
    }
    assert!(
        sources.len() > 50,
        "source walk looks broken: {} files",
        sources.len()
    );

    let mut offenders = Vec::new();
    for path in &sources {
        let rel = path
            .strip_prefix(root)
            .unwrap()
            .to_string_lossy()
            .replace('\\', "/");
        if ALLOWED.contains(&rel.as_str()) {
            continue;
        }
        let text = std::fs::read_to_string(path).expect("readable source file");
        for (i, line) in text.lines().enumerate() {
            if line.contains("spin_loop") {
                offenders.push(format!("{rel}:{}: {}", i + 1, line.trim()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "raw spin_loop hint outside the allowlist — use asl_runtime::relax::Spin \
         (yields under oversubscription) instead:\n{}",
        offenders.join("\n")
    );
}

#[test]
fn allowlist_entries_exist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for rel in ALLOWED {
        assert!(root.join(rel).is_file(), "stale allowlist entry: {rel}");
    }
}
