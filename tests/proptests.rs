//! Workspace-wide property-based tests (proptest).

use std::sync::Arc;

use libasl::dbsim::LockFactory;
use libasl::harness::Hist;
use libasl::locks::plain::PlainLock;
use libasl::runtime::Topology;
use libasl::sim::{run, ArrivalProcess, SimConfig, SimLockKind};
use proptest::prelude::*;

fn mcs_factory() -> impl LockFactory {
    || -> Arc<dyn PlainLock> { Arc::new(libasl::locks::McsLock::new()) }
}

/// Naive exact percentile for cross-checking the histogram.
fn exact_percentile(values: &mut [u64], p: f64) -> u64 {
    values.sort_unstable();
    let rank = ((p / 100.0) * values.len() as f64).ceil().max(1.0) as usize;
    values[rank.min(values.len()) - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hist_percentiles_match_exact_within_bucket_error(
        mut values in prop::collection::vec(1u64..1_000_000_000, 1..500),
        p in 1.0f64..100.0,
    ) {
        let mut h = Hist::new();
        for &v in &values {
            h.record(v);
        }
        let approx = h.percentile(p) as f64;
        let exact = exact_percentile(&mut values, p) as f64;
        // Log-linear buckets with 32 sub-buckets: <= ~3.5% relative
        // error (plus nothing for exact small values).
        let err = (approx - exact).abs() / exact.max(1.0);
        prop_assert!(err < 0.04, "p{p:.1}: approx {approx} vs exact {exact} (err {err:.4})");
    }

    #[test]
    fn hist_merge_is_sum(
        a in prop::collection::vec(1u64..1_000_000, 0..200),
        b in prop::collection::vec(1u64..1_000_000, 0..200),
    ) {
        let mut ha = Hist::new();
        let mut hb = Hist::new();
        let mut hall = Hist::new();
        for &v in &a { ha.record(v); hall.record(v); }
        for &v in &b { hb.record(v); hall.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hall.count());
        prop_assert_eq!(ha.min(), hall.min());
        prop_assert_eq!(ha.max(), hall.max());
        prop_assert_eq!(ha.percentile(99.0), hall.percentile(99.0));
    }

    #[test]
    fn hist_cdf_is_monotone(values in prop::collection::vec(1u64..1_000_000_000, 1..300)) {
        let mut h = Hist::new();
        for &v in &values { h.record(v); }
        let cdf = h.cdf();
        prop_assert!(!cdf.is_empty());
        let mut prev = (0u64, 0.0f64);
        for (v, f) in cdf {
            prop_assert!(v >= prev.0 && f >= prev.1);
            prev = (v, f);
        }
        prop_assert!((prev.1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sim_is_deterministic(
        seed in 0u64..1_000,
        cs in 500u64..5_000,
        ncs in 500u64..5_000,
    ) {
        let cfg = SimConfig {
            topology: Topology::custom(4, 4, 3.0), threads: 8,
            cs_ns: cs, ncs_ns: ncs,
            duration_ns: 20_000_000,
            lock: SimLockKind::Fifo, slo_ns: None, seed, jitter: 0.05,
            arrival: ArrivalProcess::Fixed,
        };
        let a = run(&cfg);
        let b = run(&cfg);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sim_reorderable_never_starves_little(
        seed in 0u64..200,
        window in 1_000u64..1_000_000,
    ) {
        let cfg = SimConfig {
            topology: Topology::custom(4, 4, 3.0), threads: 8,
            cs_ns: 2_000, ncs_ns: 1_000,
            duration_ns: 100_000_000,
            lock: SimLockKind::Reorderable { feedback: false, static_window_ns: Some(window) },
            slo_ns: None, seed, jitter: 0.05,
            arrival: ArrivalProcess::Fixed,
        };
        let r = run(&cfg);
        // Bounded windows guarantee little-core progress.
        prop_assert!(r.little_ops > 0, "little cores starved at window {window}");
        prop_assert!(r.big_ops > 0);
    }

    #[test]
    fn sim_bigger_window_never_hurts_throughput_much(
        seed in 0u64..50,
    ) {
        let mk = |w: u64| SimConfig {
            topology: Topology::custom(4, 4, 3.0), threads: 8,
            cs_ns: 2_000, ncs_ns: 1_000,
            duration_ns: 100_000_000,
            lock: SimLockKind::Reorderable { feedback: false, static_window_ns: Some(w) },
            slo_ns: None, seed, jitter: 0.05,
            arrival: ArrivalProcess::Fixed,
        };
        let small = run(&mk(1_000)).throughput;
        let large = run(&mk(10_000_000)).throughput;
        // Monotone-ish: a larger reorder window (more reordering) must
        // not lose more than noise.
        prop_assert!(large > small * 0.9, "window 10ms {large:.0} << window 1us {small:.0}");
    }

    #[test]
    fn kyoto_agrees_with_hashmap_model(
        ops in prop::collection::vec((0u64..500, any::<bool>()), 1..300),
    ) {
        let db = libasl::dbsim::kyoto::Kyoto::new(&mcs_factory(), 4);
        let mut model = std::collections::HashMap::new();
        for (key, is_put) in ops {
            if is_put {
                let v = libasl::dbsim::value_for(key);
                db.put(key, v);
                model.insert(key, v);
            } else {
                prop_assert_eq!(db.get(key), model.get(&key).copied());
            }
        }
        prop_assert_eq!(db.len(), model.len());
    }

    #[test]
    fn sqlite_point_queries_agree_with_model(
        rows in prop::collection::vec((0u64..1_000, 0u64..1_000), 1..60),
    ) {
        let db = libasl::dbsim::sqlite::Sqlite::new(&mcs_factory(), 0);
        let mut model = std::collections::HashMap::new();
        for (indexed, payload) in rows {
            db.insert(indexed, payload);
            model.insert(indexed, payload); // last writer wins in the index
        }
        for (indexed, payload) in &model {
            let row = db.select_point(*indexed);
            prop_assert!(row.is_some());
            prop_assert_eq!(row.unwrap().payload, *payload);
        }
    }

    #[test]
    fn proportional_policy_share_converges(
        n in 1u32..20,
        rounds in 200usize..2_000,
    ) {
        // With both classes always waiting, the proportional shuffle
        // policy must grant bigs n/(n+1) of the time (±10%).
        use libasl::locks::shuffle::{Candidate, ProportionalPolicy, ShufflePolicy};
        use libasl::runtime::CoreKind;
        let p = ProportionalPolicy::new(n);
        let cands = [
            Candidate { kind: CoreKind::Big, position: 0, eligible: true },
            Candidate { kind: CoreKind::Little, position: 1, eligible: true },
        ];
        let mut big = 0usize;
        for _ in 0..rounds {
            if p.pick(CoreKind::Big, &cands) == 0 {
                big += 1;
            }
        }
        let share = big as f64 / rounds as f64;
        let expect = n as f64 / (n as f64 + 1.0);
        prop_assert!(
            (share - expect).abs() < 0.1,
            "n={n}: share {share:.3} vs expected {expect:.3}"
        );
    }

    #[test]
    fn class_local_policy_skips_bounded(
        max_skips in 1u32..32,
        rounds in 100usize..1_000,
    ) {
        // The class-local policy may pass over the front waiter at
        // most `max_skips` times in a row before forcing FIFO.
        use libasl::locks::shuffle::{Candidate, ClassLocalPolicy, ShufflePolicy};
        use libasl::runtime::CoreKind;
        let p = ClassLocalPolicy::new(max_skips);
        // Front is always Little, a Big (releaser-class) waiter sits
        // behind it: the policy wants to skip every time.
        let cands = [
            Candidate { kind: CoreKind::Little, position: 0, eligible: true },
            Candidate { kind: CoreKind::Big, position: 1, eligible: true },
        ];
        let mut consecutive = 0u32;
        for _ in 0..rounds {
            if p.pick(CoreKind::Big, &cands) == 0 {
                consecutive = 0;
            } else {
                consecutive += 1;
                prop_assert!(
                    consecutive <= max_skips,
                    "front waiter skipped {consecutive} > bound {max_skips}"
                );
            }
        }
    }

    #[test]
    fn zipfian_samples_in_range_any_params(
        n in 1u64..100_000,
        theta_milli in 1u64..999,
        seed in 0u64..1_000,
    ) {
        use libasl::dbsim::workload::Zipfian;
        use rand::SeedableRng;
        let z = Zipfian::new(n, theta_milli as f64 / 1_000.0);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn epoch_feedback_window_bounded(
        initial in 1u64..100_000_000,
        outcomes in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        // Model of Algorithm 2: the window must always stay within
        // [0, max_window] no matter the violation sequence.
        let max_window = 100_000_000u64;
        let pct = 99u64;
        let mut window = initial.min(max_window);
        let mut unit = (window * (100 - pct) / 100).max(100);
        for violated in outcomes {
            if violated {
                window >>= 1;
                unit = (window * (100 - pct) / 100).max(100);
            } else {
                window = (window + unit).min(max_window);
            }
            prop_assert!(window <= max_window);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `from_str ∘ to_string` is the identity over the whole lock
    /// registry: every catalogued spec parses back from its printed
    /// name.
    #[test]
    fn lockspec_registry_roundtrip(idx in 0usize..10_000) {
        use libasl::harness::locks::{registry, LockSpec};
        let reg = registry();
        let spec = &reg[idx % reg.len()].spec;
        let name = spec.to_string();
        let reparsed: LockSpec = name.parse().unwrap_or_else(|e| panic!("{name}: {e}"));
        prop_assert_eq!(&reparsed, spec, "{} must round-trip", name);
    }

    /// The SLO-parameterized families round-trip for arbitrary
    /// durations, including ones that don't collapse to a round
    /// us/ms form.
    #[test]
    fn lockspec_slo_names_roundtrip(slo in 1u64..120_000_000, family in 0u8..7) {
        use libasl::harness::locks::{AslSubstrate, LockSpec};
        let spec = match family {
            0 => LockSpec::asl(Some(slo)),
            1 => LockSpec::asl_on(AslSubstrate::Clh, Some(slo)),
            2 => LockSpec::asl_on(AslSubstrate::Ticket, Some(slo)),
            3 => LockSpec::asl_on(AslSubstrate::ShflFifo, Some(slo)),
            4 => LockSpec::AslOpt { window_ns: slo },
            5 => LockSpec::AslRw { slo_ns: Some(slo) },
            _ => LockSpec::AslBlocking { slo_ns: Some(slo) },
        };
        let name = spec.to_string();
        let reparsed: LockSpec = name.parse().unwrap_or_else(|e| panic!("{name}: {e}"));
        prop_assert_eq!(reparsed, spec, "{} must round-trip", name);
    }

    /// The reader-writer families round-trip too, and rw-ness
    /// survives the round-trip.
    #[test]
    fn lockspec_rw_names_roundtrip(slo in 1u64..120_000_000, family in 0u8..7) {
        use libasl::harness::locks::{BravoInner, LockSpec};
        let spec = match family {
            0 => LockSpec::RwTicket,
            1 => LockSpec::BravoRw(BravoInner::Tas),
            2 => LockSpec::BravoRw(BravoInner::Ticket),
            3 => LockSpec::BravoRw(BravoInner::Mcs),
            4 => LockSpec::BravoRw(BravoInner::Clh),
            5 => LockSpec::BravoRw(BravoInner::Asl),
            _ => LockSpec::AslRw { slo_ns: Some(slo) },
        };
        prop_assert!(spec.is_rw());
        let name = spec.to_string();
        let reparsed: LockSpec = name.parse().unwrap_or_else(|e| panic!("{name}: {e}"));
        prop_assert!(reparsed.is_rw(), "{} must stay an rw spec", name);
        prop_assert_eq!(reparsed, spec, "{} must round-trip", name);
    }
}

#[test]
fn lmdb_versions_monotone_under_concurrency() {
    use rand::SeedableRng;
    let db = Arc::new(libasl::dbsim::lmdb::Lmdb::new(&mcs_factory()));
    let mut handles = vec![];
    for i in 0..4 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(i);
            let mut last = 0;
            for _ in 0..500 {
                use libasl::dbsim::Engine;
                db.run_request(&mut rng);
                let v = db.version();
                assert!(v >= last, "version went backwards");
                last = v;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}
