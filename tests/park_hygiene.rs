//! Park hygiene audit.
//!
//! PR 10 convention: `asl_runtime::substrate::park_or` may return
//! spuriously — the substrate contract says so explicitly, and the
//! fault injector exercises it (`FaultPlan::with_spurious`). Every
//! call site must therefore sit inside a loop that re-checks its wake
//! condition; a bare straight-line `park_or` silently turns a
//! spurious return into a lost-wakeup bug the moment a fault schedule
//! (or a real futex) wakes it early. This audit greps the source tree
//! and fails if a call site is not inside an enclosing `loop`/`while`.
//!
//! The check mirrors `tests/spin_hygiene.rs`: indentation-based scope
//! walk over rustfmt-formatted code.

use std::path::{Path, PathBuf};

/// Files exempt from the loop-recheck requirement:
/// * `substrate.rs` defines `park_or` and tests its dispatch;
/// * `fault.rs` tests the injector's spurious-return behavior itself;
/// * this audit names the pattern it greps for.
const ALLOWED: &[&str] = &[
    "crates/runtime/src/substrate.rs",
    "crates/runtime/src/fault.rs",
    "tests/park_hygiene.rs",
];

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable source tree") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn indent_of(line: &str) -> usize {
    line.len() - line.trim_start().len()
}

/// Walk the enclosing-scope chain upward by indentation from
/// `call_line` and report whether any enclosing header is a loop
/// before the function header is reached.
fn inside_loop(lines: &[&str], call_line: usize) -> bool {
    let mut bound = indent_of(lines[call_line]);
    for line in lines[..call_line].iter().rev() {
        let trimmed = line.trim_start();
        if trimmed.is_empty() {
            continue;
        }
        let ind = indent_of(line);
        if ind >= bound {
            continue;
        }
        // This line opens (or continues the header of) an enclosing
        // scope of the call site.
        bound = ind;
        if trimmed.starts_with("loop")
            || trimmed.starts_with("while ")
            || trimmed.starts_with("while(")
            || trimmed.starts_with("for ")
        {
            return true;
        }
        if trimmed.starts_with("fn ")
            || trimmed.starts_with("pub fn ")
            || trimmed.starts_with("pub(crate) fn ")
        {
            return false;
        }
    }
    false
}

#[test]
fn every_park_or_call_site_tolerates_spurious_returns() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut sources = Vec::new();
    for dir in ["crates", "src", "examples", "tests"] {
        rust_sources(&root.join(dir), &mut sources);
    }

    let mut audited = 0usize;
    let mut offenders = Vec::new();
    for path in &sources {
        let rel = path
            .strip_prefix(root)
            .unwrap()
            .to_string_lossy()
            .replace('\\', "/");
        if ALLOWED.contains(&rel.as_str()) {
            continue;
        }
        let text = std::fs::read_to_string(path).expect("readable source file");
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if !line.contains("park_or(") || line.trim_start().starts_with("//") {
                continue;
            }
            audited += 1;
            if !inside_loop(&lines, i) {
                offenders.push(format!("{rel}:{}: {}", i + 1, line.trim()));
            }
        }
    }

    // The workspace has at least the condvar, GCR passive-wait and
    // STP-block call sites; zero means the grep went stale (e.g. a
    // rename) and the audit is vacuous.
    assert!(
        audited >= 3,
        "park_or audit found only {audited} call sites — pattern gone stale?"
    );
    assert!(
        offenders.is_empty(),
        "park_or call site without an enclosing recheck loop — spurious \
         returns are allowed, wrap the park in `loop {{ if cond {{ break }} park_or(..) }}`:\n{}",
        offenders.join("\n")
    );
}

/// The audit's scope walk must actually catch a straight-line park —
/// guard against the checker rotting into always-pass.
#[test]
fn audit_detects_a_bare_park() {
    let bad = r#"
fn wait_once(flag: &AtomicBool) {
    if !flag.load(Ordering::Acquire) {
        asl_runtime::substrate::park_or(std::thread::park);
    }
}
"#;
    let lines: Vec<&str> = bad.lines().collect();
    let call = lines
        .iter()
        .position(|l| l.contains("park_or("))
        .expect("sample has a call");
    assert!(!inside_loop(&lines, call), "bare park not flagged");

    let good = r#"
fn wait(flag: &AtomicBool) {
    while !flag.load(Ordering::Acquire) {
        asl_runtime::substrate::park_or(std::thread::park);
    }
}
"#;
    let lines: Vec<&str> = good.lines().collect();
    let call = lines
        .iter()
        .position(|l| l.contains("park_or("))
        .expect("sample has a call");
    assert!(inside_loop(&lines, call), "looped park wrongly flagged");
}
