//! # libasl — asymmetry-aware scalable locking
//!
//! A comprehensive Rust reproduction of *"Asymmetry-aware Scalable
//! Locking"* (Liu et al., PPoPP 2022): the LibASL lock, every baseline
//! it is evaluated against, the asymmetric-multicore substrate the
//! evaluation needs, five database-like workloads, a deterministic
//! simulator, and a harness regenerating every figure of the paper's
//! evaluation.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`runtime`] — virtual AMP topologies, core registry, emulated
//!   work, cache-line arenas ([`asl_runtime`]).
//! * [`locks`] — the lock zoo: TAS, ticket, back-off, MCS, CLH,
//!   proportional (SHFL-PB), futex mutex, spin-then-park MCS, plus
//!   the reader-writer substrates (phase-fair ticket, BRAVO) — and
//!   the guard-based unified API (`asl_locks::api`: [`Guard`],
//!   [`DynLock`], [`DynMutex`], and their shared/exclusive
//!   counterparts [`ReadGuard`]/[`WriteGuard`], [`DynRwLock`],
//!   [`DynRwMutex`]) every layer locks through ([`asl_locks`]).
//!   Observability is first-class: `asl_locks::telemetry` records
//!   lock-agnostic acquisition counters ([`TelemetryCell`],
//!   [`Instrumented`]) and the contention-[`Adaptive`] lock morphs
//!   its substrate (TAS ↔ FIFO queue ↔ admission-restricted) from
//!   that signal. Generic concurrency restriction ([`Gcr`],
//!   [`GcrPlain`]) wraps *any* lock in an admission gate that parks
//!   surplus waiters passively — the collapse-proofing layer behind
//!   every `gcr-<name>` registry spec. The async
//!   layer ([`AsyncMutex`], [`AsyncFifoMutex`], [`AsyncDynMutex`])
//!   parks waiters as queued wakers on the [`runtime`]'s executor
//!   ([`Executor`], [`block_on`]) and wakes them FIFO or in SLO-aware
//!   deadline order. The delegation family ([`FlatCombiner`],
//!   [`CcSynch`], [`RclLock`], [`FcBan`]) executes submitted ops at a
//!   combiner or dedicated server instead of migrating the lock,
//!   unified by [`DelegationLock`]/[`DelegationHandle`] and bridged
//!   into the registry (`ccsynch`, `rcl`, `fc-ban`) by
//!   [`DelegatedMutex`].
//! * [`core`] — LibASL itself: reorderable lock, epoch/SLO feedback,
//!   the [`Mutex`] dispatch ([`asl_core`]).
//! * [`sim`] — deterministic discrete-event simulation of the same
//!   lock models ([`asl_sim`]).
//! * [`dbsim`] — the five miniature storage engines of the paper's
//!   application benchmarks ([`asl_dbsim`]).
//! * [`harness`] — measurement, per-figure reproduction drivers and
//!   the `repro` CLI ([`asl_harness`]).
//!
//! ## Quick start
//!
//! Everything locks through RAII guards — acquisitions are values,
//! released on drop (even across panics):
//!
//! ```
//! use libasl::{epoch, Mutex};
//! use libasl::runtime::{register_on_core, Topology};
//! use libasl::runtime::topology::CoreId;
//!
//! // Describe the AMP; register this thread on a little core.
//! let topo = Topology::apple_m1();
//! register_on_core(&topo, CoreId(4));
//!
//! let inventory = Mutex::new(0u64);
//!
//! // A latency-critical request handler with a 2 ms SLO (epoch 0).
//! epoch::with_epoch(0, 2_000_000, || {
//!     *inventory.lock() += 1; // guard acquired and dropped in place
//! });
//! assert_eq!(*inventory.lock(), 1);
//! ```
//!
//! Runtime-chosen locks come from the string-addressable registry
//! (`repro locks` lists every name) and hand out the same guards:
//!
//! ```
//! use libasl::harness::locks::LockSpec;
//!
//! let spec: LockSpec = "libasl-max".parse().unwrap();
//! let lock = spec.make_dyn();
//! {
//!     let _held = lock.lock();
//!     assert!(lock.is_locked());
//! } // released on drop
//! assert!(!lock.is_locked());
//! ```
//!
//! Contended hot state can skip lock migration entirely: the
//! delegation family ([`FlatCombiner`], [`CcSynch`], [`RclLock`],
//! [`FcBan`]) ships the *operation* to a combiner or server thread
//! instead of shipping the lock to the waiter. Submit ops through a
//! per-thread handle; the result comes back when some thread has
//! executed it:
//!
//! ```
//! use libasl::{CcSynch, DelegationHandle};
//!
//! // The op language: add `n`, return the new total.
//! let counter = CcSynch::new(0u64, |total: &mut u64, n: u64| {
//!     *total += n;
//!     *total
//! });
//! let h = counter.register();
//! assert_eq!(h.apply(2), 2);
//! let t = {
//!     let h2 = counter.register();
//!     std::thread::spawn(move || h2.apply(3))
//! };
//! assert_eq!(t.join().unwrap(), 5);
//! drop(h);
//! assert_eq!(counter.into_inner(), 5);
//! ```
//!
//! When runnable threads outnumber cores, restrict instead of queue:
//! [`Gcr`] wraps any lock in an admission gate — at most `K` threads
//! compete inside, the rest park passively (off the run queue) and
//! are reintroduced periodically for long-term fairness. The same
//! guards, no collapse at 128 threads on 8 cores:
//!
//! ```
//! use libasl::locks::{RawLock, TicketLock};
//! use libasl::{Gcr, GcrConfig, GuardedLock};
//!
//! // Admit at most 2 threads into the ticket lock's waiter set.
//! let lock = Gcr::with_config(TicketLock::new(), GcrConfig::fixed(2));
//! {
//!     let _held = lock.guard();
//!     assert!(lock.is_locked());
//!     assert_eq!(lock.limit(), 2);
//! }
//! assert!(!lock.is_locked());
//! ```
//!
//! Read-mostly state goes behind the reader-writer shapes — shared
//! guards overlap, exclusive guards exclude everyone:
//!
//! ```
//! use libasl::RwLock;
//!
//! let catalog: RwLock<Vec<&str>> = RwLock::new(vec!["a"]);
//! catalog.write().push("b");        // exclusive
//! let r1 = catalog.read();          // shared...
//! let r2 = catalog.read();          // ...concurrently
//! assert_eq!(r1.len() + r2.len(), 4);
//! ```
//!
//! Async critical sections park *tasks*, not threads: `lock().await`
//! queues a waker a few hundred bytes wide, which is what lets the KV
//! service model 10⁵–10⁶ concurrent clients. Guards release on drop
//! here too:
//!
//! ```
//! use std::sync::Arc;
//! use libasl::{block_on, AsyncMutex, Executor};
//!
//! let exec = Executor::new(2);
//! let total = Arc::new(AsyncMutex::new(0u64));
//! let handles: Vec<_> = (0..8)
//!     .map(|_| {
//!         let total = total.clone();
//!         exec.spawn(async move { *total.lock().await += 1 })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join();
//! }
//! assert_eq!(*block_on(total.lock()), 8);
//! ```

pub use asl_core as core;
pub use asl_dbsim as dbsim;
pub use asl_harness as harness;
pub use asl_locks as locks;
pub use asl_runtime as runtime;
pub use asl_sim as sim;

pub use asl_core::epoch;
pub use asl_core::{
    AslBlockingLock, AslCondvar, AslLock, AslMutex, AslRwLock, AslSpinLock, ReorderableLock,
};
pub use asl_locks::api::{
    DynGuard, DynLock, DynMutex, DynRwLock, DynRwMutex, Guard, GuardedLock, GuardedRwLock,
    ReadGuard, WriteGuard,
};
pub use asl_locks::{Adaptive, AdaptiveMode, Instrumented, TelemetryCell, TelemetrySnapshot};
pub use asl_locks::{AsyncDynMutex, AsyncFifoMutex, AsyncGuard, AsyncMutex, AsyncPolicy};
pub use asl_locks::{
    CcSynch, DelegatedMutex, DelegationHandle, DelegationLock, FcBan, FlatCombiner, RclLock,
    RclServer, SlotsExhausted,
};
pub use asl_locks::{Gate, Gcr, GcrConfig, GcrPlain};
pub use asl_runtime::{block_on, CoreKind, Executor, JoinHandle, Topology};

/// The recommended application-facing mutex: LibASL dispatch over a
/// reorderable MCS lock.
pub type Mutex<T> = asl_core::AslMutex<T>;

/// The recommended application-facing reader-writer lock: shared
/// reads batched over a LibASL writer substrate.
pub type RwLock<T> = asl_locks::api::RwLock<T, asl_core::AslRwLock>;
